#include "fpm/common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace fpm {

std::string human_bytes(std::uint64_t bytes) {
    static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < kUnits.size()) {
        value /= 1024.0;
        ++unit;
    }
    char buf[48];
    if (unit == 0) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
    }
    return buf;
}

std::string fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string gflops(double gigaflops_per_second) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f GF/s", gigaflops_per_second);
    return buf;
}

std::string seconds(double secs) {
    char buf[64];
    if (secs < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.1f us", secs * 1e6);
    } else if (secs < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", secs * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f s", secs);
    }
    return buf;
}

std::string pad_left(const std::string& text, std::size_t width) {
    if (text.size() >= width) {
        return text;
    }
    return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
    if (text.size() >= width) {
        return text;
    }
    return text + std::string(width - text.size(), ' ');
}

} // namespace fpm

#include "fpm/common/error.hpp"

#include <sstream>

namespace fpm::detail {

namespace {
std::string location_string(const std::source_location& loc) {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " (" << loc.function_name() << ')';
    return os.str();
}
} // namespace

void throw_check_failure(const char* expr, const std::string& message,
                         const std::source_location& loc) {
    std::ostringstream os;
    os << "fpmpart check failed: " << message << " [" << expr << "] at "
       << location_string(loc);
    throw Error(os.str());
}

void throw_assert_failure(const char* expr, const std::source_location& loc) {
    std::ostringstream os;
    os << "fpmpart internal invariant violated: [" << expr << "] at "
       << location_string(loc);
    throw LogicError(os.str());
}

} // namespace fpm::detail

#include "fpm/common/rng.hpp"

#include <cmath>

namespace fpm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 top bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo >= hi) {
        return lo;
    }
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: range << 2^64 for all our uses,
    // so modulo bias is far below measurement noise.
    return lo + static_cast<std::int64_t>((*this)() % range);
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

Rng Rng::split() noexcept {
    return Rng((*this)());
}

} // namespace fpm

#include "fpm/loadgen/report.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "fpm/common/error.hpp"

namespace fpm::loadgen {

namespace {

/// Shortest-exact decimal form of a double (round-trips bit-for-bit).
std::string number(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string number(std::uint64_t value) {
    return std::to_string(value);
}

std::string hex64(std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%016" PRIx64, value);
    return buffer;
}

/// Minimal JSON value for the documents this module itself writes:
/// objects, strings and numbers (numbers are kept as source text so
/// integer and double consumers both parse losslessly).
struct JsonValue {
    enum class Kind { kNumber, kString, kObject };
    Kind kind = Kind::kNumber;
    std::string text;  ///< number source text or string contents
    std::map<std::string, JsonValue> members;
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse() {
        JsonValue value = parse_value();
        skip_space();
        FPM_CHECK(pos_ == text_.size(), "trailing bytes after JSON document");
        return value;
    }

private:
    void skip_space() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        skip_space();
        FPM_CHECK(pos_ < text_.size(), "truncated JSON document");
        return text_[pos_];
    }

    void expect(char c) {
        FPM_CHECK(peek() == c, std::string("expected '") + c +
                                   "' at JSON offset " + std::to_string(pos_));
        ++pos_;
    }

    JsonValue parse_value() {
        const char c = peek();
        if (c == '{') {
            return parse_object();
        }
        if (c == '"') {
            JsonValue value;
            value.kind = JsonValue::Kind::kString;
            value.text = parse_string();
            return value;
        }
        FPM_CHECK(c == '-' || std::isdigit(static_cast<unsigned char>(c)),
                  std::string("unsupported JSON value starting with '") + c +
                      "'");
        JsonValue value;
        value.kind = JsonValue::Kind::kNumber;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        value.text = text_.substr(start, pos_ - start);
        return value;
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue object;
        object.kind = JsonValue::Kind::kObject;
        if (peek() == '}') {
            ++pos_;
            return object;
        }
        for (;;) {
            const std::string key = parse_string();
            expect(':');
            object.members.emplace(key, parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') {
                return object;
            }
            FPM_CHECK(c == ',', "expected ',' or '}' in JSON object");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                FPM_CHECK(pos_ < text_.size(), "truncated JSON escape");
                c = text_[pos_++];
                FPM_CHECK(c == '"' || c == '\\' || c == '/',
                          "unsupported JSON escape in report");
            }
            out += c;
        }
        FPM_CHECK(pos_ < text_.size(), "unterminated JSON string");
        ++pos_;  // closing quote
        return out;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

const JsonValue& member(const JsonValue& object, const std::string& key) {
    FPM_CHECK(object.kind == JsonValue::Kind::kObject,
              "expected a JSON object holding '" + key + "'");
    const auto it = object.members.find(key);
    FPM_CHECK(it != object.members.end(),
              "BENCH_loadgen.json is missing field '" + key + "'");
    return it->second;
}

std::string get_string(const JsonValue& object, const std::string& key) {
    const JsonValue& value = member(object, key);
    FPM_CHECK(value.kind == JsonValue::Kind::kString,
              "field '" + key + "' is not a JSON string");
    return value.text;
}

double get_double(const JsonValue& object, const std::string& key) {
    const JsonValue& value = member(object, key);
    FPM_CHECK(value.kind == JsonValue::Kind::kNumber,
              "field '" + key + "' is not a JSON number");
    char* end = nullptr;
    const double parsed = std::strtod(value.text.c_str(), &end);
    FPM_CHECK(end != value.text.c_str() && *end == '\0',
              "malformed number in field '" + key + "': " + value.text);
    return parsed;
}

std::uint64_t get_u64(const JsonValue& object, const std::string& key) {
    const JsonValue& value = member(object, key);
    FPM_CHECK(value.kind == JsonValue::Kind::kNumber,
              "field '" + key + "' is not a JSON number");
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.text.c_str(), &end, 10);
    FPM_CHECK(end != value.text.c_str() && *end == '\0',
              "malformed count in field '" + key + "': " + value.text);
    return parsed;
}

std::uint64_t get_hex64(const JsonValue& object, const std::string& key) {
    const std::string text = get_string(object, key);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 16);
    FPM_CHECK(end != text.c_str() && *end == '\0',
              "malformed fingerprint in field '" + key + "': " + text);
    return parsed;
}

std::string latency_json(const LatencyReport& latency) {
    std::string out = "{";
    out += "\"count\": " + number(latency.count);
    out += ", \"mean_us\": " + number(latency.mean_us);
    out += ", \"min_us\": " + number(latency.min_us);
    out += ", \"max_us\": " + number(latency.max_us);
    out += ", \"p50_us\": " + number(latency.p50_us);
    out += ", \"p95_us\": " + number(latency.p95_us);
    out += ", \"p99_us\": " + number(latency.p99_us);
    out += ", \"p999_us\": " + number(latency.p999_us);
    out += "}";
    return out;
}

LatencyReport latency_from(const JsonValue& object) {
    LatencyReport latency;
    latency.count = get_u64(object, "count");
    latency.mean_us = get_double(object, "mean_us");
    latency.min_us = get_double(object, "min_us");
    latency.max_us = get_double(object, "max_us");
    latency.p50_us = get_double(object, "p50_us");
    latency.p95_us = get_double(object, "p95_us");
    latency.p99_us = get_double(object, "p99_us");
    latency.p999_us = get_double(object, "p999_us");
    return latency;
}

} // namespace

LatencyReport LatencyReport::from(const obs::HistogramSnapshot& s) {
    LatencyReport latency;
    latency.count = s.count;
    latency.mean_us = s.mean() * 1e6;
    latency.min_us = s.min * 1e6;
    latency.max_us = s.max * 1e6;
    latency.p50_us = s.p50 * 1e6;
    latency.p95_us = s.p95 * 1e6;
    latency.p99_us = s.p99 * 1e6;
    latency.p999_us = s.p999 * 1e6;
    return latency;
}

std::string Report::to_json() const {
    std::string out = "{\n";
    out += "  \"schema\": \"fpmpart-loadgen-v1\",\n";
    out += "  \"mode\": \"" + mode + "\",\n";
    out += "  \"arrival\": \"" + arrival + "\",\n";
    out += "  \"seed\": " + number(seed) + ",\n";
    out += "  \"connections\": " + number(connections) + ",\n";
    out += "  \"max_outstanding\": " + number(max_outstanding) + ",\n";
    out += "  \"think_time_seconds\": " + number(think_time_seconds) + ",\n";
    out += "  \"duration_seconds\": " + number(duration_seconds) + ",\n";
    out += "  \"target_rps\": " + number(target_rps) + ",\n";
    out += "  \"achieved_rps\": " + number(achieved_rps) + ",\n";
    out += "  \"scheduled\": " + number(scheduled) + ",\n";
    out += "  \"sent\": " + number(sent) + ",\n";
    out += "  \"completed\": " + number(completed) + ",\n";
    out += "  \"errors\": " + number(errors) + ",\n";
    out += "  \"degraded\": " + number(degraded) + ",\n";
    out += "  \"dropped\": " + number(dropped) + ",\n";
    out += "  \"failovers\": " + number(failovers) + ",\n";
    out += "  \"stream_fingerprint\": \"" + hex64(stream_fingerprint) +
           "\",\n";
    out += "  \"latency\": " + latency_json(latency) + ",\n";
    out += "  \"verbs\": {\n";
    for (std::size_t v = 0; v < kVerbCount; ++v) {
        const VerbReport& verb = by_verb[v];
        out += std::string("    \"") + verb_name(static_cast<Verb>(v)) +
               "\": {";
        out += "\"sent\": " + number(verb.sent);
        out += ", \"completed\": " + number(verb.completed);
        out += ", \"errors\": " + number(verb.errors);
        out += ", \"degraded\": " + number(verb.degraded);
        out += ", \"latency\": " + latency_json(verb.latency);
        out += "}";
        out += v + 1 < kVerbCount ? ",\n" : "\n";
    }
    out += "  }\n";
    out += "}\n";
    return out;
}

Report Report::from_json(const std::string& text) {
    const JsonValue root = JsonParser(text).parse();
    const std::string schema = get_string(root, "schema");
    FPM_CHECK(schema == "fpmpart-loadgen-v1",
              "unsupported BENCH_loadgen.json schema: " + schema);

    Report report;
    report.mode = get_string(root, "mode");
    report.arrival = get_string(root, "arrival");
    report.seed = get_u64(root, "seed");
    report.connections = get_u64(root, "connections");
    report.max_outstanding = get_u64(root, "max_outstanding");
    report.think_time_seconds = get_double(root, "think_time_seconds");
    report.duration_seconds = get_double(root, "duration_seconds");
    report.target_rps = get_double(root, "target_rps");
    report.achieved_rps = get_double(root, "achieved_rps");
    report.scheduled = get_u64(root, "scheduled");
    report.sent = get_u64(root, "sent");
    report.completed = get_u64(root, "completed");
    report.errors = get_u64(root, "errors");
    report.degraded = get_u64(root, "degraded");
    report.dropped = get_u64(root, "dropped");
    report.failovers = get_u64(root, "failovers");
    report.stream_fingerprint = get_hex64(root, "stream_fingerprint");
    report.latency = latency_from(member(root, "latency"));

    const JsonValue& verbs = member(root, "verbs");
    for (std::size_t v = 0; v < kVerbCount; ++v) {
        const JsonValue& entry =
            member(verbs, verb_name(static_cast<Verb>(v)));
        VerbReport& verb = report.by_verb[v];
        verb.sent = get_u64(entry, "sent");
        verb.completed = get_u64(entry, "completed");
        verb.errors = get_u64(entry, "errors");
        verb.degraded = get_u64(entry, "degraded");
        verb.latency = latency_from(member(entry, "latency"));
    }
    return report;
}

} // namespace fpm::loadgen

/// \file runner.hpp
/// \brief Drives a live partition server with a deterministic workload.
///
/// Two loop disciplines, one Report:
///
///  * **Closed loop** — `connections` workers each own a ServeClient and
///    issue requests back-to-back (optionally separated by a think-time
///    sleep).  The offered rate adapts to the server: a slow server
///    simply sees fewer requests.  Latency is the client round trip
///    (ServeClient::last_rtt_seconds).  This is the discipline for
///    "how fast can N well-behaved clients go".
///
///  * **Open loop** — the arrival schedule is expanded up front from
///    (arrival process, target_rps, duration, seed) and a dispatcher
///    releases one request per scheduled arrival, regardless of how the
///    server is doing.  Workers pull released requests from a queue
///    bounded at `max_outstanding`; when the server falls behind and the
///    queue is full, the arrival is **dropped and counted** — never
///    silently deferred.  Latency is measured from the *scheduled*
///    arrival time to completion, so queueing delay the server caused is
///    charged to the server.  Together the two rules make coordinated
///    omission a number in the report (`dropped`, and inflated tail
///    quantiles) instead of a blind spot.
///
/// Workers materialise request i as nth_request(spec, i) — the stream is
/// a pure function of the spec, so two runs with equal specs offer
/// byte-identical traffic (Report::stream_fingerprint proves it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include <vector>

#include "fpm/loadgen/report.hpp"
#include "fpm/loadgen/workload.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/serve_config.hpp"

namespace fpm::loadgen {

/// Loop discipline; see file comment.
enum class Mode { kClosed, kOpen };

/// Lower-case report/JSON name of a mode ("closed" | "open").
[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// How to drive the server (the WorkloadSpec says *what* to send, this
/// says *how hard*).
struct LoadConfig {
    // -- target -------------------------------------------------------
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Failover target list: when non-empty it overrides host/port and
    /// every client walks it on typed transport errors (ServeClient's
    /// endpoint-list form), so a primary dying mid-run shifts traffic to
    /// its replica instead of turning into a wall of errors.  Each
    /// advance is counted in Report::failovers.
    std::vector<serve::Endpoint> endpoints;
    /// Client-side timeouts/retry policy (retries stay off by default:
    /// the generator wants to *see* failures, not paper over them).
    serve::ServeConfig serve;

    Mode mode = Mode::kClosed;

    /// Concurrent connections (worker threads); both modes.
    std::size_t connections = 4;

    // -- closed loop --------------------------------------------------
    /// Sleep between a reply and the next request of the same worker.
    double think_time_seconds = 0.0;
    /// Total request budget; 0 means run until `duration_seconds`
    /// elapses.  A fixed budget makes the closed-loop stream length —
    /// and therefore its fingerprint — deterministic.
    std::uint64_t requests = 0;

    // -- open loop ----------------------------------------------------
    Arrival arrival = Arrival::kPoisson;
    double target_rps = 1000.0;
    /// Bound of the released-but-not-completed queue; a full queue makes
    /// the next arrival a drop (see file comment).
    std::size_t max_outstanding = 64;

    /// Run length: the schedule horizon (open), or the stop deadline
    /// when `requests` is 0 (closed).
    double duration_seconds = 1.0;

    /// Test hook: observes every completed round trip.  Calls are
    /// serialised by the runner, so the callback itself need not be
    /// thread-safe; keep it cheap — it runs on the worker's hot path.
    std::function<void(std::uint64_t index, const serve::Request& request,
                       const std::string& reply_line)>
        observer;
};

/// Runs the workload against the configured server and returns the
/// measured Report.  Blocks until the run finishes.  Throws fpm::Error
/// on an invalid spec/config or when the initial connections cannot be
/// established; mid-run transport failures are *counted* (errors),
/// not thrown.
[[nodiscard]] Report run(const WorkloadSpec& spec, const LoadConfig& config);

} // namespace fpm::loadgen

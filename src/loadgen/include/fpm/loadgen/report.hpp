/// \file report.hpp
/// \brief Machine-readable result of one load-generation run.
///
/// The runner records every round trip into fpm::obs log-bucket
/// histograms (one overall, one per verb) and condenses them into this
/// Report: achieved request rate, latency quantiles up to p99.9, error /
/// degraded / drop counts and the per-verb breakdown.  to_json() renders
/// the BENCH_loadgen.json document (schema `fpmpart-loadgen-v1`,
/// documented field-by-field in docs/benchmarking.md) and from_json()
/// parses it back *exactly* — doubles travel as shortest-exact %.17g, so
/// a Report is closed under the round trip and the perf gate can compare
/// a fresh run against a checked-in baseline without tolerance being
/// eaten by formatting.
///
/// Drop accounting: `scheduled` counts every arrival of the open-loop
/// schedule, `sent` the ones actually dispatched, `dropped` the ones
/// refused because the bounded outstanding-request queue was full —
/// scheduled == sent + dropped, always.  Hiding drops would be
/// coordinated omission (the latency histogram would only describe the
/// requests a struggling server *let* the generator send); reporting
/// them keeps the tail honest.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fpm/loadgen/workload.hpp"
#include "fpm/obs/metrics.hpp"

namespace fpm::loadgen {

/// Latency digest in microseconds, extracted from an obs::Histogram.
struct LatencyReport {
    std::uint64_t count = 0;
    double mean_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;

    /// Converts a snapshot recorded in seconds.
    [[nodiscard]] static LatencyReport from(const obs::HistogramSnapshot& s);

    bool operator==(const LatencyReport&) const = default;
};

/// Per-verb slice of the run.
struct VerbReport {
    std::uint64_t sent = 0;       ///< requests put on the wire
    std::uint64_t completed = 0;  ///< replies received and decoded
    std::uint64_t errors = 0;     ///< ERR replies + transport failures
    std::uint64_t degraded = 0;   ///< PARTITION replies with degraded=1
    LatencyReport latency;

    bool operator==(const VerbReport&) const = default;
};

/// See file comment.
struct Report {
    std::string mode;     ///< "closed" | "open"
    std::string arrival;  ///< "poisson" | "uniform"; "" for closed loop
    std::uint64_t seed = 0;
    std::uint64_t connections = 0;
    std::uint64_t max_outstanding = 0;   ///< open loop; 0 for closed
    double think_time_seconds = 0.0;     ///< closed loop; 0 for open
    double duration_seconds = 0.0;       ///< measured wall clock of the run
    double target_rps = 0.0;             ///< open loop; 0 for closed
    double achieved_rps = 0.0;           ///< completed / duration_seconds

    std::uint64_t scheduled = 0;  ///< arrivals planned (== sent + dropped)
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t degraded = 0;
    std::uint64_t dropped = 0;  ///< bounded-queue refusals (open loop)
    /// Client endpoint advances on typed transport errors — nonzero
    /// only when the run drove a failover endpoint list and at least
    /// one endpoint died or refused mid-run.
    std::uint64_t failovers = 0;

    /// stream_fingerprint() over the first `scheduled` (open) or `sent`
    /// (closed) requests: equal fingerprints == byte-identical streams.
    std::uint64_t stream_fingerprint = 0;

    LatencyReport latency;  ///< all verbs together
    std::array<VerbReport, kVerbCount> by_verb{};  ///< indexed by Verb

    /// The BENCH_loadgen.json document (schema fpmpart-loadgen-v1).
    [[nodiscard]] std::string to_json() const;

    /// Exact inverse of to_json().  Throws fpm::Error on malformed JSON,
    /// a wrong `schema` tag or a missing known field; unknown fields are
    /// ignored (forward compatibility).
    [[nodiscard]] static Report from_json(const std::string& text);

    bool operator==(const Report&) const = default;
};

} // namespace fpm::loadgen

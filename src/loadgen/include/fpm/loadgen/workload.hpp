/// \file workload.hpp
/// \brief Deterministic workload specification for the load generator.
///
/// A WorkloadSpec describes *what* traffic looks like — the verb mix
/// (PARTITION/STATS/HEALTH/FEEDBACK weights), the model sets it targets
/// and the problem-size distribution — and a single seed makes the whole
/// request stream reproducible bit for bit.  The generator is stateless
/// and *indexable*: request i is a pure function of (spec, i), computed
/// by hashing the seed with the index, so closed-loop workers pulling
/// indices off an atomic counter, the open-loop dispatcher walking its
/// arrival schedule, and a replay run all materialise the exact same
/// stream regardless of thread interleaving.  stream_fingerprint()
/// condenses the first `count` encoded request lines into one 64-bit
/// FNV-1a value, which the report embeds so two runs can be checked for
/// identical streams without diffing wire logs.
///
/// The open-loop arrival schedule is equally deterministic:
/// arrival_schedule() expands (arrival process, rate, duration, seed)
/// into the full list of send offsets up front — Poisson draws
/// exponential inter-arrival gaps from an fpm::Rng, uniform paces
/// requests exactly 1/rps apart — so the *offered* load is fixed by the
/// spec, never by how fast the server happens to answer (the property
/// that makes coordinated omission measurable, see runner.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/serve/protocol.hpp"

namespace fpm::loadgen {

/// The request verbs the generator can emit, in report order.
enum class Verb { kPartition, kStats, kHealth, kFeedback };
inline constexpr std::size_t kVerbCount = 4;

/// Lower-case report/JSON name of a verb ("partition", "stats", ...).
[[nodiscard]] const char* verb_name(Verb verb) noexcept;

/// See file comment.  Weights are relative (they need not sum to 1);
/// a verb with weight 0 never appears.  All-zero weights are invalid.
struct WorkloadSpec {
    /// Model sets PARTITION/FEEDBACK requests target, drawn uniformly.
    /// Must be non-empty when those verbs have weight.
    std::vector<std::string> model_sets;

    // -- verb mix -----------------------------------------------------
    double partition_weight = 1.0;
    double stats_weight = 0.0;
    double health_weight = 0.0;
    /// FEEDBACK against a server without `--adapt on` answers
    /// `ERR feedback_disabled`, which the recorder counts as an error —
    /// leave at 0 unless the target server adapts.
    double feedback_weight = 0.0;

    // -- PARTITION parameters -----------------------------------------
    /// Problem size n drawn uniformly (integers, inclusive) from
    /// [n_min, n_max].  A wide range defeats the plan cache (cold
    /// computes); a narrow one measures the cache-hit path.
    std::int64_t n_min = 16;
    std::int64_t n_max = 96;
    serve::Algorithm algorithm = serve::Algorithm::kFpm;
    bool with_layout = true;

    // -- FEEDBACK parameters ------------------------------------------
    std::int64_t feedback_devices = 4;  ///< device drawn from [0, devices)

    /// Seed of the whole stream; same spec + same seed = same requests.
    std::uint64_t seed = 1;
};

/// Request `index` of the stream described by `spec` — a pure function
/// (see file comment).  Throws fpm::Error on an invalid spec (all
/// weights zero, or no model sets while a set-addressed verb has
/// weight).
[[nodiscard]] serve::Request nth_request(const WorkloadSpec& spec,
                                         std::uint64_t index);

/// Classifies a generated request for per-verb accounting.
[[nodiscard]] Verb verb_of(const serve::Request& request) noexcept;

/// FNV-1a over the first `count` encoded request lines ('\n'-joined).
/// Two runs with equal fingerprints sent byte-identical streams.
[[nodiscard]] std::uint64_t stream_fingerprint(const WorkloadSpec& spec,
                                               std::uint64_t count);

/// Open-loop arrival process.
enum class Arrival { kPoisson, kUniform };

[[nodiscard]] const char* arrival_name(Arrival arrival) noexcept;

/// Expands the arrival process into absolute send offsets (seconds from
/// the run start, non-decreasing) covering [0, duration).  Poisson draws
/// exponential gaps with mean 1/rps from Rng(seed); uniform paces
/// exactly 1/rps.  Throws fpm::Error when rps or duration is not
/// positive.
[[nodiscard]] std::vector<double> arrival_schedule(Arrival arrival,
                                                   double rps,
                                                   double duration,
                                                   std::uint64_t seed);

} // namespace fpm::loadgen

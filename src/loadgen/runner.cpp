#include "fpm/loadgen/runner.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/serve/client.hpp"

namespace fpm::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

/// One verb's (or the whole run's) tallies; histograms record seconds.
struct Tally {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> degraded{0};
    obs::Histogram latency;
};

struct Shared {
    const WorkloadSpec& spec;
    const LoadConfig& cfg;
    Tally total;
    std::array<Tally, kVerbCount> by_verb;
    std::mutex observer_mutex;
    /// Endpoint advances harvested from retired and finished clients.
    std::atomic<std::uint64_t> failovers{0};
};

/// The effective failover list: LoadConfig::endpoints, or host/port.
std::vector<serve::Endpoint> endpoints_of(const LoadConfig& cfg) {
    if (!cfg.endpoints.empty()) {
        return cfg.endpoints;
    }
    return {serve::Endpoint{cfg.host, cfg.port}};
}

/// Reconnect attempt that reports failure as nullptr, for mid-run
/// recovery (the *initial* connections throw instead, see run()).
std::unique_ptr<serve::ServeClient> try_connect(const LoadConfig& cfg) {
    try {
        return std::make_unique<serve::ServeClient>(endpoints_of(cfg),
                                                    cfg.serve);
    } catch (const Error&) {
        return nullptr;
    }
}

/// Banks a client's failover count before it is dropped or finishes.
void harvest_failovers(Shared& s,
                       const std::unique_ptr<serve::ServeClient>& client) {
    if (client) {
        s.failovers.fetch_add(client->failovers(),
                              std::memory_order_relaxed);
    }
}

/// Issues request `index` on `client` and records the outcome.  Open
/// loop passes the scheduled arrival time so queueing delay is charged
/// to the latency; closed loop passes nullptr and uses the client's own
/// round-trip clock.  Never throws: transport failures count as errors
/// and drop the connection (the next call reconnects).
void issue(Shared& s, std::unique_ptr<serve::ServeClient>& client,
           std::uint64_t index, const Clock::time_point* scheduled) {
    const serve::Request request = nth_request(s.spec, index);
    Tally& verb = s.by_verb[static_cast<std::size_t>(verb_of(request))];
    verb.sent.fetch_add(1, std::memory_order_relaxed);
    s.total.sent.fetch_add(1, std::memory_order_relaxed);

    if (!client) {
        client = try_connect(s.cfg);
    }
    std::string reply;
    if (client) {
        try {
            reply = client->request(request.encode());
        } catch (const Error&) {
            harvest_failovers(s, client);
            client.reset();
        }
    }
    if (!client) {
        verb.errors.fetch_add(1, std::memory_order_relaxed);
        s.total.errors.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    const double latency =
        scheduled != nullptr
            ? std::chrono::duration<double>(Clock::now() - *scheduled).count()
            : client->last_rtt_seconds();

    bool is_error = false;
    bool is_degraded = false;
    try {
        const serve::Response response = serve::Response::decode(reply);
        is_error = response.kind == serve::Response::Kind::kError;
        is_degraded = response.kind == serve::Response::Kind::kPartition &&
                      response.partition.degraded;
    } catch (const Error&) {
        is_error = true;  // structurally malformed reply
    }

    verb.completed.fetch_add(1, std::memory_order_relaxed);
    s.total.completed.fetch_add(1, std::memory_order_relaxed);
    if (is_error) {
        verb.errors.fetch_add(1, std::memory_order_relaxed);
        s.total.errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (is_degraded) {
        verb.degraded.fetch_add(1, std::memory_order_relaxed);
        s.total.degraded.fetch_add(1, std::memory_order_relaxed);
    }
    verb.latency.record(latency);
    s.total.latency.record(latency);

    if (s.cfg.observer) {
        const std::lock_guard<std::mutex> lock(s.observer_mutex);
        s.cfg.observer(index, request, reply);
    }
}

void validate(const LoadConfig& cfg) {
    FPM_CHECK(cfg.connections >= 1, "load config needs connections >= 1");
    FPM_CHECK(cfg.think_time_seconds >= 0.0,
              "load config needs think_time_seconds >= 0");
    if (cfg.mode == Mode::kClosed) {
        FPM_CHECK(cfg.requests > 0 || cfg.duration_seconds > 0.0,
                  "closed loop needs a request budget or a duration");
    } else {
        FPM_CHECK(cfg.max_outstanding >= 1,
                  "open loop needs max_outstanding >= 1");
        // target_rps and duration_seconds are checked by
        // arrival_schedule().
    }
}

} // namespace

const char* mode_name(Mode mode) noexcept {
    return mode == Mode::kClosed ? "closed" : "open";
}

Report run(const WorkloadSpec& spec, const LoadConfig& cfg) {
    validate(cfg);
    (void)nth_request(spec, 0);  // fail fast on an invalid workload

    Shared shared{spec, cfg, {}, {}, {}};

    // Establish every connection up front — a wrong host/port should
    // throw before the run starts, not surface as 100 % errors.
    std::vector<std::unique_ptr<serve::ServeClient>> clients;
    clients.reserve(cfg.connections);
    for (std::size_t c = 0; c < cfg.connections; ++c) {
        clients.push_back(std::make_unique<serve::ServeClient>(
            endpoints_of(cfg), cfg.serve));
    }

    std::vector<double> schedule;
    std::uint64_t scheduled = 0;
    std::atomic<std::uint64_t> dropped{0};
    std::vector<std::thread> workers;
    workers.reserve(cfg.connections);

    const Clock::time_point start = Clock::now();

    if (cfg.mode == Mode::kClosed) {
        std::atomic<std::uint64_t> next{0};
        const Clock::time_point deadline =
            start + to_duration(cfg.duration_seconds);
        for (std::size_t c = 0; c < cfg.connections; ++c) {
            workers.emplace_back([&shared, &next, &cfg, deadline,
                                  client = std::move(clients[c])]() mutable {
                for (;;) {
                    if (cfg.requests == 0 && Clock::now() >= deadline) {
                        break;
                    }
                    const std::uint64_t index =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (cfg.requests > 0 && index >= cfg.requests) {
                        break;
                    }
                    issue(shared, client, index, nullptr);
                    if (cfg.think_time_seconds > 0.0) {
                        std::this_thread::sleep_for(
                            to_duration(cfg.think_time_seconds));
                    }
                }
                harvest_failovers(shared, client);
            });
        }
        for (std::thread& worker : workers) {
            worker.join();
        }
    } else {
        schedule = arrival_schedule(cfg.arrival, cfg.target_rps,
                                    cfg.duration_seconds, spec.seed);
        scheduled = schedule.size();

        struct Item {
            std::uint64_t index;
            Clock::time_point due;
        };
        std::deque<Item> queue;
        std::mutex mutex;
        std::condition_variable ready;
        bool closed = false;

        for (std::size_t c = 0; c < cfg.connections; ++c) {
            workers.emplace_back([&shared, &queue, &mutex, &ready, &closed,
                                  client = std::move(clients[c])]() mutable {
                for (;;) {
                    Item item{};
                    {
                        std::unique_lock<std::mutex> lock(mutex);
                        ready.wait(lock,
                                   [&] { return closed || !queue.empty(); });
                        if (queue.empty()) {
                            break;  // closed and drained
                        }
                        item = queue.front();
                        queue.pop_front();
                    }
                    issue(shared, client, item.index, &item.due);
                }
                harvest_failovers(shared, client);
            });
        }

        // Dispatcher: release each arrival at its scheduled time.  A full
        // queue means the server is `max_outstanding` requests behind the
        // offered load — the arrival is dropped and counted, never
        // deferred (deferring would be coordinated omission).
        for (std::uint64_t i = 0; i < scheduled; ++i) {
            const Clock::time_point due = start + to_duration(schedule[i]);
            std::this_thread::sleep_until(due);
            {
                const std::lock_guard<std::mutex> lock(mutex);
                if (queue.size() >= cfg.max_outstanding) {
                    dropped.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                queue.push_back(Item{i, due});
            }
            ready.notify_one();
        }
        {
            const std::lock_guard<std::mutex> lock(mutex);
            closed = true;
        }
        ready.notify_all();
        for (std::thread& worker : workers) {
            worker.join();
        }
    }

    const double measured =
        std::chrono::duration<double>(Clock::now() - start).count();

    Report report;
    report.mode = mode_name(cfg.mode);
    report.arrival =
        cfg.mode == Mode::kOpen ? arrival_name(cfg.arrival) : "";
    report.seed = spec.seed;
    report.connections = cfg.connections;
    report.max_outstanding = cfg.mode == Mode::kOpen ? cfg.max_outstanding : 0;
    report.think_time_seconds =
        cfg.mode == Mode::kClosed ? cfg.think_time_seconds : 0.0;
    report.duration_seconds = measured;
    report.target_rps = cfg.mode == Mode::kOpen ? cfg.target_rps : 0.0;

    report.sent = shared.total.sent.load();
    report.completed = shared.total.completed.load();
    report.errors = shared.total.errors.load();
    report.degraded = shared.total.degraded.load();
    report.dropped = dropped.load();
    report.failovers = shared.failovers.load(std::memory_order_relaxed);
    // Closed loop offers exactly what it sends; open loop offers the
    // whole schedule.  Either way scheduled == sent + dropped.
    report.scheduled = cfg.mode == Mode::kOpen ? scheduled : report.sent;
    report.achieved_rps =
        measured > 0.0 ? static_cast<double>(report.completed) / measured
                       : 0.0;
    report.stream_fingerprint = stream_fingerprint(spec, report.scheduled);
    report.latency = LatencyReport::from(shared.total.latency.snapshot());
    for (std::size_t v = 0; v < kVerbCount; ++v) {
        const Tally& tally = shared.by_verb[v];
        VerbReport& verb = report.by_verb[v];
        verb.sent = tally.sent.load();
        verb.completed = tally.completed.load();
        verb.errors = tally.errors.load();
        verb.degraded = tally.degraded.load();
        verb.latency = LatencyReport::from(tally.latency.snapshot());
    }
    return report;
}

} // namespace fpm::loadgen

#include "fpm/loadgen/workload.hpp"

#include <cmath>

#include "fpm/common/error.hpp"
#include "fpm/common/rng.hpp"

namespace fpm::loadgen {

namespace {

/// splitmix64 finalizer: decorrelates (seed, index) pairs before they
/// seed the per-request Rng, so neighbouring indices share no structure.
std::uint64_t mix(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double total_weight(const WorkloadSpec& spec) {
    return spec.partition_weight + spec.stats_weight + spec.health_weight +
           spec.feedback_weight;
}

void validate(const WorkloadSpec& spec) {
    FPM_CHECK(spec.partition_weight >= 0.0 && spec.stats_weight >= 0.0 &&
                  spec.health_weight >= 0.0 && spec.feedback_weight >= 0.0,
              "workload verb weights must be non-negative");
    FPM_CHECK(total_weight(spec) > 0.0,
              "workload needs at least one verb with positive weight");
    FPM_CHECK(spec.n_min >= 1 && spec.n_max >= spec.n_min,
              "workload needs 1 <= n_min <= n_max");
    if (spec.partition_weight > 0.0 || spec.feedback_weight > 0.0) {
        FPM_CHECK(!spec.model_sets.empty(),
                  "workload targets PARTITION/FEEDBACK but names no "
                  "model sets");
    }
    if (spec.feedback_weight > 0.0) {
        FPM_CHECK(spec.feedback_devices >= 1,
                  "workload needs feedback_devices >= 1");
    }
}

} // namespace

const char* verb_name(Verb verb) noexcept {
    switch (verb) {
    case Verb::kPartition: return "partition";
    case Verb::kStats: return "stats";
    case Verb::kHealth: return "health";
    case Verb::kFeedback: return "feedback";
    }
    return "unknown";
}

const char* arrival_name(Arrival arrival) noexcept {
    return arrival == Arrival::kPoisson ? "poisson" : "uniform";
}

serve::Request nth_request(const WorkloadSpec& spec, std::uint64_t index) {
    validate(spec);
    // One private stream per index: identical across threads, runs and
    // loop modes (the determinism the replay tests pin down).
    Rng rng(mix(spec.seed) ^ mix(index));

    serve::Request request;
    double pick = rng.uniform() * total_weight(spec);
    if ((pick -= spec.partition_weight) < 0.0) {
        request.kind = serve::Request::Kind::kPartition;
        request.partition.model_set = spec.model_sets[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(spec.model_sets.size()) -
                                1))];
        request.partition.n = rng.uniform_int(spec.n_min, spec.n_max);
        request.partition.algorithm = spec.algorithm;
        request.partition.with_layout = spec.with_layout;
    } else if ((pick -= spec.stats_weight) < 0.0) {
        request.kind = serve::Request::Kind::kStats;
    } else if ((pick -= spec.health_weight) < 0.0) {
        request.kind = serve::Request::Kind::kHealth;
    } else {
        request.kind = serve::Request::Kind::kFeedback;
        request.feedback.model_set = spec.model_sets[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(spec.model_sets.size()) -
                                1))];
        request.feedback.device = rng.uniform_int(0, spec.feedback_devices - 1);
        // Plausible served-execution evidence: a mid-range operating
        // point and a sub-second wall clock.  Load generation only needs
        // well-formed samples; fidelity is the feedback-replay tool's job.
        request.feedback.problem_size = rng.uniform(
            static_cast<double>(spec.n_min * spec.n_min),
            static_cast<double>(spec.n_max * spec.n_max));
        request.feedback.seconds = rng.uniform(0.001, 0.5);
    }
    return request;
}

Verb verb_of(const serve::Request& request) noexcept {
    switch (request.kind) {
    case serve::Request::Kind::kStats: return Verb::kStats;
    case serve::Request::Kind::kHealth: return Verb::kHealth;
    case serve::Request::Kind::kFeedback: return Verb::kFeedback;
    default: return Verb::kPartition;
    }
}

std::uint64_t stream_fingerprint(const WorkloadSpec& spec,
                                 std::uint64_t count) {
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
    const auto fold = [&hash](const std::string& text) {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
        hash ^= static_cast<unsigned char>('\n');
        hash *= 1099511628211ULL;
    };
    for (std::uint64_t i = 0; i < count; ++i) {
        fold(nth_request(spec, i).encode());
    }
    return hash;
}

std::vector<double> arrival_schedule(Arrival arrival, double rps,
                                     double duration, std::uint64_t seed) {
    FPM_CHECK(rps > 0.0, "arrival schedule needs rps > 0");
    FPM_CHECK(duration > 0.0, "arrival schedule needs duration > 0");
    std::vector<double> offsets;
    offsets.reserve(static_cast<std::size_t>(rps * duration) + 1);
    Rng rng(seed);
    double at = 0.0;
    while (at < duration) {
        offsets.push_back(at);
        if (arrival == Arrival::kUniform) {
            at += 1.0 / rps;
        } else {
            // Exponential inter-arrival with mean 1/rps; 1 - u avoids
            // log(0) because uniform() is in [0, 1).
            at += -std::log(1.0 - rng.uniform()) / rps;
        }
    }
    return offsets;
}

} // namespace fpm::loadgen

#include "fpm/serve/protocol.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fpm/common/error.hpp"

namespace fpm::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
        tokens.push_back(token);
    }
    return tokens;
}

std::int64_t parse_int(const std::string& text, const char* what) {
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              std::string("malformed ") + what + ": " + text);
    return static_cast<std::int64_t>(value);
}

double parse_double(const std::string& text, const char* what) {
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              std::string("malformed ") + what + ": " + text);
    return value;
}

/// Shortest-exact decimal form of a double (round-trips bit-for-bit).
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string sanitize(const std::string& message) {
    std::string clean = message;
    for (char& ch : clean) {
        if (ch == '\n' || ch == '\r') {
            ch = ' ';
        }
    }
    return clean;
}

/// Splits `token` at the first '=' and checks the key.
std::string expect_kv(const std::string& token, const char* key) {
    const auto eq = token.find('=');
    FPM_CHECK(eq != std::string::npos &&
                  token.compare(0, eq, key) == 0,
              std::string("expected ") + key + "=..., got: " + token);
    return token.substr(eq + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::string part;
    std::istringstream stream(text);
    while (std::getline(stream, part, sep)) {
        parts.push_back(part);
    }
    return parts;
}

} // namespace

Command parse_command(const std::string& line) {
    const auto tokens = tokenize(line);
    FPM_CHECK(!tokens.empty(), "empty request");
    const std::string& verb = tokens[0];

    Command command;
    if (verb == "PING") {
        FPM_CHECK(tokens.size() == 1, "PING takes no arguments");
        command.kind = Command::Kind::kPing;
    } else if (verb == "QUIT") {
        FPM_CHECK(tokens.size() == 1, "QUIT takes no arguments");
        command.kind = Command::Kind::kQuit;
    } else if (verb == "STATS") {
        FPM_CHECK(tokens.size() == 1, "STATS takes no arguments");
        command.kind = Command::Kind::kStats;
    } else if (verb == "MODELS") {
        FPM_CHECK(tokens.size() == 1, "MODELS takes no arguments");
        command.kind = Command::Kind::kModels;
    } else if (verb == "LOAD") {
        FPM_CHECK(tokens.size() == 3, "usage: LOAD <name> <path>");
        command.kind = Command::Kind::kLoad;
        command.name = tokens[1];
        command.path = tokens[2];
    } else if (verb == "PARTITION") {
        FPM_CHECK(tokens.size() == 4 || tokens.size() == 5,
                  "usage: PARTITION <model> <n> <fpm|cpm|even> [nolayout]");
        command.kind = Command::Kind::kPartition;
        command.partition.model_set = tokens[1];
        command.partition.n = parse_int(tokens[2], "workload size");
        FPM_CHECK(command.partition.n > 0, "workload size must be positive");
        const auto algorithm = part::parse_algorithm(tokens[3]);
        FPM_CHECK(algorithm.has_value(), "unknown algorithm: " + tokens[3]);
        command.partition.algorithm = *algorithm;
        if (tokens.size() == 5) {
            FPM_CHECK(tokens[4] == "nolayout",
                      "unknown PARTITION option: " + tokens[4]);
            command.partition.with_layout = false;
        }
    } else {
        throw Error("unknown command: " + verb);
    }
    return command;
}

std::string format_partition_reply(const PartitionRequest& request,
                                   const PartitionResponse& response) {
    const PartitionPlan& plan = *response.plan;
    std::ostringstream out;
    out << "OK PARTITION model=" << request.model_set
        << " gen=" << plan.generation << " n=" << plan.key.n
        << " algo=" << part::to_string(plan.key.algorithm)
        << " cached=" << (response.cache_hit ? 1 : 0)
        << " coalesced=" << (response.coalesced ? 1 : 0)
        << " balanced=" << format_double(plan.balanced_time)
        << " makespan=" << format_double(plan.makespan)
        << " comm=" << plan.comm_cost << " blocks=";
    for (std::size_t i = 0; i < plan.blocks.size(); ++i) {
        if (i > 0) {
            out << ',';
        }
        out << plan.blocks[i];
    }
    out << " layout=";
    if (!plan.key.with_layout) {
        out << '-';
    } else {
        for (std::size_t i = 0; i < plan.layout.rects.size(); ++i) {
            const auto& rect = plan.layout.rects[i];
            if (i > 0) {
                out << '|';
            }
            out << rect.col0 << ':' << rect.row0 << ':' << rect.w << ':'
                << rect.h;
        }
    }
    return out.str();
}

PartitionReply parse_partition_reply(const std::string& reply) {
    if (reply.rfind("ERR", 0) == 0) {
        throw Error("server error: " +
                    (reply.size() > 4 ? reply.substr(4) : std::string{}));
    }
    const auto tokens = tokenize(reply);
    FPM_CHECK(tokens.size() == 13 && tokens[0] == "OK" &&
                  tokens[1] == "PARTITION",
              "malformed partition reply: " + reply);

    PartitionReply parsed;
    parsed.model = expect_kv(tokens[2], "model");
    parsed.generation = static_cast<std::uint64_t>(
        parse_int(expect_kv(tokens[3], "gen"), "generation"));
    parsed.n = parse_int(expect_kv(tokens[4], "n"), "n");
    const auto algorithm = part::parse_algorithm(expect_kv(tokens[5], "algo"));
    FPM_CHECK(algorithm.has_value(), "malformed algorithm in reply: " + reply);
    parsed.algorithm = *algorithm;
    parsed.cached = parse_int(expect_kv(tokens[6], "cached"), "cached") != 0;
    parsed.coalesced =
        parse_int(expect_kv(tokens[7], "coalesced"), "coalesced") != 0;
    parsed.balanced_time =
        parse_double(expect_kv(tokens[8], "balanced"), "balanced time");
    parsed.makespan = parse_double(expect_kv(tokens[9], "makespan"), "makespan");
    parsed.comm_cost = parse_int(expect_kv(tokens[10], "comm"), "comm cost");

    for (const auto& cell : split(expect_kv(tokens[11], "blocks"), ',')) {
        parsed.blocks.push_back(parse_int(cell, "block count"));
    }
    const std::string layout_text = expect_kv(tokens[12], "layout");
    if (layout_text != "-") {
        for (const auto& rect_text : split(layout_text, '|')) {
            const auto fields = split(rect_text, ':');
            FPM_CHECK(fields.size() == 4, "malformed rect: " + rect_text);
            part::Rect rect;
            rect.col0 = parse_int(fields[0], "rect col0");
            rect.row0 = parse_int(fields[1], "rect row0");
            rect.w = parse_int(fields[2], "rect w");
            rect.h = parse_int(fields[3], "rect h");
            parsed.rects.push_back(rect);
        }
    }
    return parsed;
}

std::string handle_line(RequestEngine& engine, const std::string& line) {
    try {
        const Command command = parse_command(line);
        switch (command.kind) {
        case Command::Kind::kPing:
            return "OK PONG v" + std::to_string(kProtocolVersion);
        case Command::Kind::kQuit:
            return "OK BYE";
        case Command::Kind::kLoad: {
            const auto set =
                engine.registry().load_csv(command.name, command.path);
            std::ostringstream out;
            char fingerprint[32];
            std::snprintf(fingerprint, sizeof fingerprint, "%016" PRIx64,
                          set->fingerprint);
            out << "OK LOADED name=" << set->name
                << " models=" << set->models.size()
                << " gen=" << set->generation
                << " fingerprint=" << fingerprint;
            return out.str();
        }
        case Command::Kind::kModels: {
            const auto sets = engine.registry().snapshot();
            std::ostringstream out;
            out << "OK MODELS count=" << sets.size() << " sets=";
            if (sets.empty()) {
                out << '-';
            }
            for (std::size_t i = 0; i < sets.size(); ++i) {
                if (i > 0) {
                    out << ',';
                }
                out << sets[i]->name << ':' << sets[i]->generation << ':'
                    << sets[i]->models.size();
            }
            return out.str();
        }
        case Command::Kind::kStats: {
            const EngineStats stats = engine.stats();
            std::ostringstream out;
            out << "OK STATS requests=" << stats.requests
                << " computed=" << stats.computed
                << " coalesced=" << stats.coalesced
                << " hits=" << stats.cache.hits
                << " misses=" << stats.cache.misses
                << " evictions=" << stats.cache.evictions
                << " cache_size=" << stats.cache.size
                << " models=" << engine.registry().size()
                << " mean_latency_us="
                << format_double(stats.latency.mean * 1e6)
                << " max_latency_us="
                << format_double(stats.latency.max * 1e6);
            for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
                const auto& h = stats.latency_by_algorithm[i];
                const char* algo =
                    part::to_string(static_cast<Algorithm>(i));
                out << ' ' << algo << "_count=" << h.count
                    << ' ' << algo
                    << "_p50_us=" << format_double(h.p50 * 1e6)
                    << ' ' << algo
                    << "_p95_us=" << format_double(h.p95 * 1e6)
                    << ' ' << algo
                    << "_p99_us=" << format_double(h.p99 * 1e6);
            }
            return out.str();
        }
        case Command::Kind::kPartition: {
            const PartitionResponse response =
                engine.execute(command.partition);
            return format_partition_reply(command.partition, response);
        }
        }
        return "ERR unreachable";
    } catch (const std::exception& e) {
        return "ERR " + sanitize(e.what());
    }
}

} // namespace fpm::serve

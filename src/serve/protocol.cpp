#include "fpm/serve/protocol.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/serve/reactor_metrics.hpp"
#include "fpm/serve/repl_status.hpp"

namespace fpm::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
        tokens.push_back(token);
    }
    return tokens;
}

std::int64_t parse_int(const std::string& text, const char* what) {
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              std::string("malformed ") + what + ": " + text);
    return static_cast<std::int64_t>(value);
}

std::uint64_t parse_hex64(const std::string& text, const char* what) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 16);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              std::string("malformed ") + what + ": " + text);
    return static_cast<std::uint64_t>(value);
}

double parse_double(const std::string& text, const char* what) {
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              std::string("malformed ") + what + ": " + text);
    return value;
}

/// Shortest-exact decimal form of a double (round-trips bit-for-bit).
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string format_hex64(std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%016" PRIx64, value);
    return buffer;
}

std::string sanitize(const std::string& message) {
    std::string clean = message;
    for (char& ch : clean) {
        if (ch == '\n' || ch == '\r') {
            ch = ' ';
        }
    }
    return clean;
}

/// Splits `token` at the first '=' and checks the key.
std::string expect_kv(const std::string& token, const char* key) {
    const auto eq = token.find('=');
    FPM_CHECK(eq != std::string::npos &&
                  token.compare(0, eq, key) == 0,
              std::string("expected ") + key + "=..., got: " + token);
    return token.substr(eq + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::string part;
    std::istringstream stream(text);
    while (std::getline(stream, part, sep)) {
        parts.push_back(part);
    }
    return parts;
}

void append_histogram_us(std::vector<StatField>& fields,
                         const std::string& prefix,
                         const obs::HistogramSnapshot& histogram) {
    fields.push_back({prefix + "_p50_us", format_double(histogram.p50 * 1e6)});
    fields.push_back({prefix + "_p95_us", format_double(histogram.p95 * 1e6)});
    fields.push_back({prefix + "_p99_us", format_double(histogram.p99 * 1e6)});
}

} // namespace

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

std::string Request::encode() const {
    switch (kind) {
    case Kind::kPing:
        return "PING";
    case Kind::kQuit:
        return "QUIT";
    case Kind::kStats:
        return "STATS";
    case Kind::kHealth:
        return "HEALTH";
    case Kind::kModels:
        return "MODELS";
    case Kind::kLoad:
        return "LOAD " + name + " " + path;
    case Kind::kPartition: {
        std::ostringstream out;
        out << "PARTITION " << partition.model_set << ' ' << partition.n
            << ' ' << part::to_string(partition.algorithm);
        if (!partition.with_layout) {
            out << " nolayout";
        }
        return out.str();
    }
    case Kind::kFeedback: {
        std::ostringstream out;
        out << "FEEDBACK " << feedback.model_set << ' ' << feedback.device
            << ' ' << format_double(feedback.problem_size) << ' '
            << format_double(feedback.seconds);
        return out.str();
    }
    }
    throw Error("unencodable request");
}

Request Request::decode(const std::string& line) {
    const auto tokens = tokenize(line);
    FPM_CHECK(!tokens.empty(), "empty request");
    const std::string& verb = tokens[0];

    Request request;
    if (verb == "PING") {
        FPM_CHECK(tokens.size() == 1, "PING takes no arguments");
        request.kind = Kind::kPing;
    } else if (verb == "QUIT") {
        FPM_CHECK(tokens.size() == 1, "QUIT takes no arguments");
        request.kind = Kind::kQuit;
    } else if (verb == "STATS") {
        FPM_CHECK(tokens.size() == 1, "STATS takes no arguments");
        request.kind = Kind::kStats;
    } else if (verb == "HEALTH") {
        FPM_CHECK(tokens.size() == 1, "HEALTH takes no arguments");
        request.kind = Kind::kHealth;
    } else if (verb == "MODELS") {
        FPM_CHECK(tokens.size() == 1, "MODELS takes no arguments");
        request.kind = Kind::kModels;
    } else if (verb == "LOAD") {
        FPM_CHECK(tokens.size() == 3, "usage: LOAD <name> <path>");
        request.kind = Kind::kLoad;
        request.name = tokens[1];
        request.path = tokens[2];
    } else if (verb == "PARTITION") {
        FPM_CHECK(tokens.size() == 4 || tokens.size() == 5,
                  "usage: PARTITION <model> <n> <fpm|cpm|even> [nolayout]");
        request.kind = Kind::kPartition;
        request.partition.model_set = tokens[1];
        request.partition.n = parse_int(tokens[2], "workload size");
        FPM_CHECK(request.partition.n > 0, "workload size must be positive");
        const auto algorithm = part::parse_algorithm(tokens[3]);
        FPM_CHECK(algorithm.has_value(), "unknown algorithm: " + tokens[3]);
        request.partition.algorithm = *algorithm;
        if (tokens.size() == 5) {
            FPM_CHECK(tokens[4] == "nolayout",
                      "unknown PARTITION option: " + tokens[4]);
            request.partition.with_layout = false;
        }
    } else if (verb == "FEEDBACK") {
        FPM_CHECK(tokens.size() == 5,
                  "usage: FEEDBACK <model> <device> <size> <seconds>");
        request.kind = Kind::kFeedback;
        request.feedback.model_set = tokens[1];
        request.feedback.device = parse_int(tokens[2], "device index");
        FPM_CHECK(request.feedback.device >= 0,
                  "device index must be non-negative");
        request.feedback.problem_size =
            parse_double(tokens[3], "problem size");
        FPM_CHECK(request.feedback.problem_size > 0.0,
                  "problem size must be positive");
        request.feedback.seconds = parse_double(tokens[4], "measured time");
        FPM_CHECK(request.feedback.seconds > 0.0,
                  "measured time must be positive");
    } else {
        // Typed so the wire answer is `ERR unsupported_verb ...` — the
        // code a newer client probes for when feature-detecting verbs.
        throw ServiceError(ErrorCode::kUnsupportedVerb,
                           "unknown command: " + verb);
    }
    return request;
}

// ---------------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------------

Response Response::make_error(ErrorCode code, const std::string& message) {
    Response response;
    response.kind = Kind::kError;
    response.error_code = code;
    // `error` is never empty: a message-less typed error carries the
    // token text itself, so callers testing `!error.empty()` keep
    // detecting failure.
    response.error =
        message.empty() ? std::string(error_token(code)) : sanitize(message);
    return response;
}

Response Response::make_error(const std::string& message) {
    return make_error(classify_legacy_error(message), message);
}

std::string Response::encode() const {
    switch (kind) {
    case Kind::kError: {
        // `ERR <code>` when the message is just the token (or empty),
        // `ERR <code> <message>` otherwise — so `ERR busy` stays the
        // exact bytes pre-v5 peers expect.
        const std::string_view token = error_token(error_code);
        if (error.empty() || error == token) {
            return "ERR " + std::string(token);
        }
        return "ERR " + std::string(token) + " " + sanitize(error);
    }
    case Kind::kPong:
        return "OK PONG v" + std::to_string(version);
    case Kind::kBye:
        return "OK BYE";
    case Kind::kLoaded: {
        std::ostringstream out;
        out << "OK LOADED name=" << loaded.name << " models=" << loaded.models
            << " gen=" << loaded.generation
            << " fingerprint=" << format_hex64(loaded.fingerprint);
        return out.str();
    }
    case Kind::kModels: {
        std::ostringstream out;
        out << "OK MODELS count=" << sets.size() << " sets=";
        if (sets.empty()) {
            out << '-';
        }
        for (std::size_t i = 0; i < sets.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            out << sets[i].name << ':' << sets[i].generation << ':'
                << sets[i].models;
        }
        return out.str();
    }
    case Kind::kStats: {
        std::ostringstream out;
        out << "OK STATS";
        for (const StatField& field : stats) {
            out << ' ' << field.name << '=' << field.value;
        }
        return out.str();
    }
    case Kind::kHealth: {
        std::ostringstream out;
        out << "OK HEALTH live=" << (health.live ? 1 : 0)
            << " ready=" << (health.ready ? 1 : 0)
            << " models=" << health.models
            << " faults=" << health.faults_injected
            << " degraded=" << health.degraded
            << " recovered_generation=" << health.recovered_generation
            << " role=" << (health.role.empty() ? "primary" : health.role)
            << " repl_lag_frames=" << health.repl_lag_frames
            << " repl_lag_seconds=" << format_double(health.repl_lag_seconds)
            << " repl_source="
            << (health.repl_source.empty() ? "-" : health.repl_source)
            << " repl_applied_generation=" << health.repl_applied_generation;
        for (const auto& [key, value] : health.extras) {
            out << ' ' << key << '=' << value;
        }
        return out.str();
    }
    case Kind::kPartition: {
        std::ostringstream out;
        out << "OK PARTITION model=" << partition.model
            << " gen=" << partition.generation << " n=" << partition.n
            << " algo=" << part::to_string(partition.algorithm)
            << " cached=" << (partition.cached ? 1 : 0)
            << " coalesced=" << (partition.coalesced ? 1 : 0)
            << " degraded=" << (partition.degraded ? 1 : 0)
            << " balanced=" << format_double(partition.balanced_time)
            << " makespan=" << format_double(partition.makespan)
            << " comm=" << partition.comm_cost << " blocks=";
        for (std::size_t i = 0; i < partition.blocks.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            out << partition.blocks[i];
        }
        out << " layout=";
        if (partition.rects.empty()) {
            out << '-';
        } else {
            for (std::size_t i = 0; i < partition.rects.size(); ++i) {
                const auto& rect = partition.rects[i];
                if (i > 0) {
                    out << '|';
                }
                out << rect.col0 << ':' << rect.row0 << ':' << rect.w << ':'
                    << rect.h;
            }
        }
        return out.str();
    }
    case Kind::kFeedback: {
        std::ostringstream out;
        out << "OK FEEDBACK set=" << feedback.model_set
            << " device=" << feedback.device
            << " samples=" << feedback.samples
            << " reliable=" << (feedback.reliable ? 1 : 0)
            << " drift=" << (feedback.drift ? 1 : 0)
            << " republished=" << (feedback.republished ? 1 : 0)
            << " version=" << feedback.version;
        return out.str();
    }
    }
    throw Error("unencodable response");
}

Response Response::decode(const std::string& line) {
    Response response;
    if (line.rfind("ERR", 0) == 0) {
        response.kind = Kind::kError;
        const std::string body =
            line.size() > 4 ? line.substr(4) : std::string{};
        // v5 grammar: first token is an ErrorCode token.  Anything else
        // is a pre-v5 free-text error, classified onto the nearest code
        // with the full text kept as the message.
        const auto space = body.find(' ');
        const std::string head = body.substr(0, space);
        if (const auto code = parse_error_token(head)) {
            response.error_code = *code;
            response.error = space == std::string::npos
                                 ? head  // token alone; never empty
                                 : body.substr(space + 1);
        } else {
            response.error_code = classify_legacy_error(body);
            response.error = body;
        }
        return response;
    }
    const auto tokens = tokenize(line);
    FPM_CHECK(tokens.size() >= 2 && tokens[0] == "OK",
              "malformed response: " + line);
    const std::string& tag = tokens[1];

    if (tag == "PONG") {
        FPM_CHECK(tokens.size() == 3 && tokens[2].size() > 1 &&
                      tokens[2][0] == 'v',
                  "malformed PONG reply: " + line);
        response.kind = Kind::kPong;
        response.version = static_cast<int>(
            parse_int(tokens[2].substr(1), "protocol version"));
    } else if (tag == "BYE") {
        FPM_CHECK(tokens.size() == 2, "malformed BYE reply: " + line);
        response.kind = Kind::kBye;
    } else if (tag == "LOADED") {
        FPM_CHECK(tokens.size() == 6, "malformed LOADED reply: " + line);
        response.kind = Kind::kLoaded;
        response.loaded.name = expect_kv(tokens[2], "name");
        response.loaded.models = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[3], "models"), "model count"));
        response.loaded.generation = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[4], "gen"), "generation"));
        response.loaded.fingerprint =
            parse_hex64(expect_kv(tokens[5], "fingerprint"), "fingerprint");
    } else if (tag == "MODELS") {
        FPM_CHECK(tokens.size() == 4, "malformed MODELS reply: " + line);
        response.kind = Kind::kModels;
        const std::uint64_t count = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[2], "count"), "set count"));
        const std::string sets_text = expect_kv(tokens[3], "sets");
        if (sets_text != "-") {
            for (const auto& entry : split(sets_text, ',')) {
                const auto fields = split(entry, ':');
                FPM_CHECK(fields.size() == 3,
                          "malformed model-set entry: " + entry);
                ModelSetInfo info;
                info.name = fields[0];
                info.generation = static_cast<std::uint64_t>(
                    parse_int(fields[1], "generation"));
                info.models = static_cast<std::uint64_t>(
                    parse_int(fields[2], "model count"));
                response.sets.push_back(std::move(info));
            }
        }
        FPM_CHECK(response.sets.size() == count,
                  "MODELS count disagrees with its set list: " + line);
    } else if (tag == "STATS") {
        response.kind = Kind::kStats;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
            const auto eq = tokens[i].find('=');
            FPM_CHECK(eq != std::string::npos && eq > 0,
                      "malformed STATS field: " + tokens[i]);
            response.stats.push_back(
                {tokens[i].substr(0, eq), tokens[i].substr(eq + 1)});
        }
    } else if (tag == "HEALTH") {
        // Open key=value list since v5 (a v3/v4 reply is a strict
        // prefix, so it decodes through the same path).
        response.kind = Kind::kHealth;
        std::vector<StatField> fields;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
            const auto eq = tokens[i].find('=');
            FPM_CHECK(eq != std::string::npos && eq > 0,
                      "malformed HEALTH field: " + tokens[i]);
            fields.push_back(
                {tokens[i].substr(0, eq), tokens[i].substr(eq + 1)});
        }
        response.health = ServerHealth::from_fields(fields);
    } else if (tag == "PARTITION") {
        FPM_CHECK(tokens.size() == 14, "malformed partition reply: " + line);
        response.kind = Kind::kPartition;
        PartitionReply& parsed = response.partition;
        parsed.model = expect_kv(tokens[2], "model");
        parsed.generation = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[3], "gen"), "generation"));
        parsed.n = parse_int(expect_kv(tokens[4], "n"), "n");
        const auto algorithm =
            part::parse_algorithm(expect_kv(tokens[5], "algo"));
        FPM_CHECK(algorithm.has_value(),
                  "malformed algorithm in reply: " + line);
        parsed.algorithm = *algorithm;
        parsed.cached =
            parse_int(expect_kv(tokens[6], "cached"), "cached") != 0;
        parsed.coalesced =
            parse_int(expect_kv(tokens[7], "coalesced"), "coalesced") != 0;
        parsed.degraded =
            parse_int(expect_kv(tokens[8], "degraded"), "degraded") != 0;
        parsed.balanced_time =
            parse_double(expect_kv(tokens[9], "balanced"), "balanced time");
        parsed.makespan =
            parse_double(expect_kv(tokens[10], "makespan"), "makespan");
        parsed.comm_cost = parse_int(expect_kv(tokens[11], "comm"), "comm cost");
        for (const auto& cell : split(expect_kv(tokens[12], "blocks"), ',')) {
            parsed.blocks.push_back(parse_int(cell, "block count"));
        }
        const std::string layout_text = expect_kv(tokens[13], "layout");
        if (layout_text != "-") {
            for (const auto& rect_text : split(layout_text, '|')) {
                const auto fields = split(rect_text, ':');
                FPM_CHECK(fields.size() == 4, "malformed rect: " + rect_text);
                part::Rect rect;
                rect.col0 = parse_int(fields[0], "rect col0");
                rect.row0 = parse_int(fields[1], "rect row0");
                rect.w = parse_int(fields[2], "rect w");
                rect.h = parse_int(fields[3], "rect h");
                parsed.rects.push_back(rect);
            }
        }
    } else if (tag == "FEEDBACK") {
        FPM_CHECK(tokens.size() == 9, "malformed FEEDBACK reply: " + line);
        response.kind = Kind::kFeedback;
        FeedbackReply& parsed = response.feedback;
        parsed.model_set = expect_kv(tokens[2], "set");
        parsed.device = parse_int(expect_kv(tokens[3], "device"), "device");
        parsed.samples = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[4], "samples"), "sample count"));
        parsed.reliable =
            parse_int(expect_kv(tokens[5], "reliable"), "reliable") != 0;
        parsed.drift = parse_int(expect_kv(tokens[6], "drift"), "drift") != 0;
        parsed.republished =
            parse_int(expect_kv(tokens[7], "republished"), "republished") != 0;
        parsed.version = static_cast<std::uint64_t>(
            parse_int(expect_kv(tokens[8], "version"), "version"));
    } else {
        throw Error("unknown response tag: " + tag);
    }
    return response;
}

// ---------------------------------------------------------------------------
// Builders and dispatch
// ---------------------------------------------------------------------------

PartitionReply make_partition_reply(const PartitionRequest& request,
                                    const PartitionResponse& response) {
    const PartitionPlan& plan = *response.plan;
    PartitionReply reply;
    reply.model = request.model_set;
    reply.generation = plan.generation;
    reply.n = plan.key.n;
    reply.algorithm = plan.key.algorithm;
    reply.cached = response.cache_hit;
    reply.coalesced = response.coalesced;
    reply.degraded = response.degraded;
    reply.balanced_time = plan.balanced_time;
    reply.makespan = plan.makespan;
    reply.comm_cost = plan.comm_cost;
    reply.blocks = plan.blocks;
    if (plan.key.with_layout) {
        reply.rects = plan.layout.rects;
    }
    return reply;
}

Response make_stats_reply(const EngineStats& stats, std::size_t model_count) {
    Response response;
    response.kind = Response::Kind::kStats;
    auto& fields = response.stats;
    fields.push_back({"requests", std::to_string(stats.requests)});
    fields.push_back({"computed", std::to_string(stats.computed)});
    fields.push_back({"coalesced", std::to_string(stats.coalesced)});
    fields.push_back({"hits", std::to_string(stats.cache.hits)});
    fields.push_back({"misses", std::to_string(stats.cache.misses)});
    fields.push_back({"evictions", std::to_string(stats.cache.evictions)});
    fields.push_back({"cache_size", std::to_string(stats.cache.size)});
    fields.push_back({"cache_shards", std::to_string(stats.cache_shards)});
    fields.push_back({"models", std::to_string(model_count)});
    fields.push_back({"degraded", std::to_string(stats.degraded)});
    fields.push_back({"faults", std::to_string(fault::injected_total())});
    fields.push_back(
        {"mean_latency_us", format_double(stats.latency.mean * 1e6)});
    fields.push_back(
        {"max_latency_us", format_double(stats.latency.max * 1e6)});
    for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
        const auto& histogram = stats.latency_by_algorithm[i];
        const std::string algo = part::to_string(static_cast<Algorithm>(i));
        fields.push_back({algo + "_count", std::to_string(histogram.count)});
        append_histogram_us(fields, algo, histogram);
    }

    // Reactor lifecycle: process-global, so STATS works identically over
    // the wire and in-process (all-zero until a server has run).
    const ReactorMetrics& reactor = ReactorMetrics::get();
    fields.push_back({"reactors", std::to_string(reactor.reactors.value())});
    fields.push_back(
        {"open_conns", std::to_string(reactor.open_connections.value())});
    fields.push_back(
        {"buffered_bytes", std::to_string(reactor.buffered_bytes.value())});
    fields.push_back({"accepted", std::to_string(reactor.accepted.value())});
    fields.push_back({"rejected", std::to_string(reactor.rejected.value())});
    fields.push_back(
        {"idle_timeouts", std::to_string(reactor.idle_timeouts.value())});
    fields.push_back(
        {"send_failures", std::to_string(reactor.send_failures.value())});
    fields.push_back({"pipelined", std::to_string(reactor.pipelined.value())});
    fields.push_back({"pipeline_depth_max",
                      std::to_string(reactor.pipeline_depth.max())});
    append_histogram_us(fields, "q2r",
                        reactor.queue_to_reply_seconds.snapshot());

    // Online adaptation: also process-global (the adapt layer sits above
    // serve, so the protocol reads the raw instruments by name).  All
    // zero until an AdaptEngine has ingested feedback.
    static auto& metrics = obs::MetricsRegistry::global();
    static auto& adapt_samples = metrics.counter("adapt.samples");
    static auto& adapt_reliable = metrics.counter("adapt.reliable");
    static auto& adapt_drift = metrics.counter("adapt.drift");
    static auto& adapt_republished = metrics.counter("adapt.republished");
    static auto& adapt_version = metrics.gauge("adapt.model_version");
    fields.push_back({"adapt_samples", std::to_string(adapt_samples.value())});
    fields.push_back(
        {"adapt_reliable", std::to_string(adapt_reliable.value())});
    fields.push_back({"adapt_drift", std::to_string(adapt_drift.value())});
    fields.push_back(
        {"adapt_republished", std::to_string(adapt_republished.value())});
    fields.push_back(
        {"adapt_model_version", std::to_string(adapt_version.value())});

    // Durable model store: process-global like the adapt layer (the
    // store sits above serve).  All zero until a store is attached.
    static auto& store_appended = metrics.counter("store.appended");
    static auto& store_bytes = metrics.counter("store.bytes");
    static auto& store_snapshots = metrics.counter("store.snapshots");
    static auto& store_fsync = metrics.histogram("store.fsync_seconds");
    static auto& recovered = metrics.gauge("store.recovered_generation");
    fields.push_back({"store_appended", std::to_string(store_appended.value())});
    fields.push_back({"store_bytes", std::to_string(store_bytes.value())});
    fields.push_back(
        {"store_snapshots", std::to_string(store_snapshots.value())});
    append_histogram_us(fields, "store_fsync", store_fsync.snapshot());
    fields.push_back(
        {"recovered_generation", std::to_string(recovered.value())});

    // Replication (v6): role/source are process-global strings the repl
    // layer publishes through ReplStatus (defaults on a plain primary).
    const ReplStatusSnapshot repl = ReplStatus::global().snapshot();
    fields.push_back({"role", repl.role.empty() ? "primary" : repl.role});
    fields.push_back({"repl_lag_frames", std::to_string(repl.lag_frames)});
    fields.push_back({"repl_lag_seconds", format_double(repl.lag_seconds)});
    fields.push_back(
        {"repl_source", repl.source.empty() ? "-" : repl.source});
    fields.push_back({"repl_applied_generation",
                      std::to_string(repl.applied_generation)});
    return response;
}

namespace {

/// One known STATS field: where it lands in ServerStats and how its
/// value parses.  Captureless lambdas, so the table is plain function
/// pointers.
using StatSetter = void (*)(ServerStats&, const std::string&);

std::uint64_t stat_u64(const std::string& value, const char* what) {
    return static_cast<std::uint64_t>(parse_int(value, what));
}

const std::map<std::string, StatSetter, std::less<>>& stat_setters() {
    auto algo_entries = [](std::map<std::string, StatSetter, std::less<>>& m) {
        m["fpm_count"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[0].count = stat_u64(v, "fpm_count");
        };
        m["fpm_p50_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[0].p50_us = parse_double(v, "fpm_p50_us");
        };
        m["fpm_p95_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[0].p95_us = parse_double(v, "fpm_p95_us");
        };
        m["fpm_p99_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[0].p99_us = parse_double(v, "fpm_p99_us");
        };
        m["cpm_count"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[1].count = stat_u64(v, "cpm_count");
        };
        m["cpm_p50_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[1].p50_us = parse_double(v, "cpm_p50_us");
        };
        m["cpm_p95_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[1].p95_us = parse_double(v, "cpm_p95_us");
        };
        m["cpm_p99_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[1].p99_us = parse_double(v, "cpm_p99_us");
        };
        m["even_count"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[2].count = stat_u64(v, "even_count");
        };
        m["even_p50_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[2].p50_us = parse_double(v, "even_p50_us");
        };
        m["even_p95_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[2].p95_us = parse_double(v, "even_p95_us");
        };
        m["even_p99_us"] = [](ServerStats& s, const std::string& v) {
            s.by_algorithm[2].p99_us = parse_double(v, "even_p99_us");
        };
    };
    static const auto table = [&algo_entries]() {
        std::map<std::string, StatSetter, std::less<>> m;
        m["requests"] = [](ServerStats& s, const std::string& v) {
            s.requests = stat_u64(v, "requests");
        };
        m["computed"] = [](ServerStats& s, const std::string& v) {
            s.computed = stat_u64(v, "computed");
        };
        m["coalesced"] = [](ServerStats& s, const std::string& v) {
            s.coalesced = stat_u64(v, "coalesced");
        };
        m["degraded"] = [](ServerStats& s, const std::string& v) {
            s.degraded = stat_u64(v, "degraded");
        };
        m["mean_latency_us"] = [](ServerStats& s, const std::string& v) {
            s.mean_latency_us = parse_double(v, "mean_latency_us");
        };
        m["max_latency_us"] = [](ServerStats& s, const std::string& v) {
            s.max_latency_us = parse_double(v, "max_latency_us");
        };
        m["hits"] = [](ServerStats& s, const std::string& v) {
            s.hits = stat_u64(v, "hits");
        };
        m["misses"] = [](ServerStats& s, const std::string& v) {
            s.misses = stat_u64(v, "misses");
        };
        m["evictions"] = [](ServerStats& s, const std::string& v) {
            s.evictions = stat_u64(v, "evictions");
        };
        m["cache_size"] = [](ServerStats& s, const std::string& v) {
            s.cache_size = stat_u64(v, "cache_size");
        };
        m["cache_shards"] = [](ServerStats& s, const std::string& v) {
            s.cache_shards = stat_u64(v, "cache_shards");
        };
        m["models"] = [](ServerStats& s, const std::string& v) {
            s.models = stat_u64(v, "models");
        };
        m["faults"] = [](ServerStats& s, const std::string& v) {
            s.faults = stat_u64(v, "faults");
        };
        m["reactors"] = [](ServerStats& s, const std::string& v) {
            s.reactors = stat_u64(v, "reactors");
        };
        m["open_conns"] = [](ServerStats& s, const std::string& v) {
            s.open_conns = parse_int(v, "open_conns");
        };
        m["buffered_bytes"] = [](ServerStats& s, const std::string& v) {
            s.buffered_bytes = parse_int(v, "buffered_bytes");
        };
        m["accepted"] = [](ServerStats& s, const std::string& v) {
            s.accepted = stat_u64(v, "accepted");
        };
        m["rejected"] = [](ServerStats& s, const std::string& v) {
            s.rejected = stat_u64(v, "rejected");
        };
        m["idle_timeouts"] = [](ServerStats& s, const std::string& v) {
            s.idle_timeouts = stat_u64(v, "idle_timeouts");
        };
        m["send_failures"] = [](ServerStats& s, const std::string& v) {
            s.send_failures = stat_u64(v, "send_failures");
        };
        m["pipelined"] = [](ServerStats& s, const std::string& v) {
            s.pipelined = stat_u64(v, "pipelined");
        };
        m["pipeline_depth_max"] = [](ServerStats& s, const std::string& v) {
            s.pipeline_depth_max = parse_int(v, "pipeline_depth_max");
        };
        m["q2r_p50_us"] = [](ServerStats& s, const std::string& v) {
            s.q2r_p50_us = parse_double(v, "q2r_p50_us");
        };
        m["q2r_p95_us"] = [](ServerStats& s, const std::string& v) {
            s.q2r_p95_us = parse_double(v, "q2r_p95_us");
        };
        m["q2r_p99_us"] = [](ServerStats& s, const std::string& v) {
            s.q2r_p99_us = parse_double(v, "q2r_p99_us");
        };
        m["adapt_samples"] = [](ServerStats& s, const std::string& v) {
            s.adapt_samples = stat_u64(v, "adapt_samples");
        };
        m["adapt_reliable"] = [](ServerStats& s, const std::string& v) {
            s.adapt_reliable = stat_u64(v, "adapt_reliable");
        };
        m["adapt_drift"] = [](ServerStats& s, const std::string& v) {
            s.adapt_drift = stat_u64(v, "adapt_drift");
        };
        m["adapt_republished"] = [](ServerStats& s, const std::string& v) {
            s.adapt_republished = stat_u64(v, "adapt_republished");
        };
        m["adapt_model_version"] = [](ServerStats& s, const std::string& v) {
            s.adapt_model_version = stat_u64(v, "adapt_model_version");
        };
        m["store_appended"] = [](ServerStats& s, const std::string& v) {
            s.store_appended = stat_u64(v, "store_appended");
        };
        m["store_bytes"] = [](ServerStats& s, const std::string& v) {
            s.store_bytes = stat_u64(v, "store_bytes");
        };
        m["store_snapshots"] = [](ServerStats& s, const std::string& v) {
            s.store_snapshots = stat_u64(v, "store_snapshots");
        };
        m["store_fsync_p50_us"] = [](ServerStats& s, const std::string& v) {
            s.store_fsync_p50_us = parse_double(v, "store_fsync_p50_us");
        };
        m["store_fsync_p95_us"] = [](ServerStats& s, const std::string& v) {
            s.store_fsync_p95_us = parse_double(v, "store_fsync_p95_us");
        };
        m["store_fsync_p99_us"] = [](ServerStats& s, const std::string& v) {
            s.store_fsync_p99_us = parse_double(v, "store_fsync_p99_us");
        };
        m["recovered_generation"] = [](ServerStats& s, const std::string& v) {
            s.recovered_generation = stat_u64(v, "recovered_generation");
        };
        m["role"] = [](ServerStats& s, const std::string& v) {
            FPM_CHECK(!v.empty(), "malformed value for role");
            s.role = v;
        };
        m["repl_lag_frames"] = [](ServerStats& s, const std::string& v) {
            s.repl_lag_frames = stat_u64(v, "repl_lag_frames");
        };
        m["repl_lag_seconds"] = [](ServerStats& s, const std::string& v) {
            s.repl_lag_seconds = parse_double(v, "repl_lag_seconds");
        };
        m["repl_source"] = [](ServerStats& s, const std::string& v) {
            FPM_CHECK(!v.empty(), "malformed value for repl_source");
            s.repl_source = v;
        };
        m["repl_applied_generation"] = [](ServerStats& s,
                                          const std::string& v) {
            s.repl_applied_generation =
                stat_u64(v, "repl_applied_generation");
        };
        algo_entries(m);
        return m;
    }();
    return table;
}

} // namespace

ServerStats ServerStats::from_fields(const std::vector<StatField>& fields) {
    ServerStats stats;
    const auto& setters = stat_setters();
    for (const StatField& field : fields) {
        const auto it = setters.find(field.name);
        if (it == setters.end()) {
            stats.extras[field.name] = field.value;  // forward-compat
            continue;
        }
        it->second(stats, field.value);
    }
    return stats;
}

namespace {

/// The HEALTH analogue of stat_setters(): one entry per known field.
using HealthSetter = void (*)(ServerHealth&, const std::string&);

const std::map<std::string, HealthSetter, std::less<>>& health_setters() {
    static const auto table = []() {
        std::map<std::string, HealthSetter, std::less<>> m;
        m["live"] = [](ServerHealth& h, const std::string& v) {
            h.live = parse_int(v, "live") != 0;
        };
        m["ready"] = [](ServerHealth& h, const std::string& v) {
            h.ready = parse_int(v, "ready") != 0;
        };
        m["models"] = [](ServerHealth& h, const std::string& v) {
            h.models = stat_u64(v, "models");
        };
        m["faults"] = [](ServerHealth& h, const std::string& v) {
            h.faults_injected = stat_u64(v, "faults");
        };
        m["degraded"] = [](ServerHealth& h, const std::string& v) {
            h.degraded = stat_u64(v, "degraded");
        };
        m["recovered_generation"] = [](ServerHealth& h, const std::string& v) {
            h.recovered_generation = stat_u64(v, "recovered_generation");
        };
        m["role"] = [](ServerHealth& h, const std::string& v) {
            FPM_CHECK(!v.empty(), "malformed value for role");
            h.role = v;
        };
        m["repl_lag_frames"] = [](ServerHealth& h, const std::string& v) {
            h.repl_lag_frames = stat_u64(v, "repl_lag_frames");
        };
        m["repl_lag_seconds"] = [](ServerHealth& h, const std::string& v) {
            h.repl_lag_seconds = parse_double(v, "repl_lag_seconds");
        };
        m["repl_source"] = [](ServerHealth& h, const std::string& v) {
            FPM_CHECK(!v.empty(), "malformed value for repl_source");
            h.repl_source = v;
        };
        m["repl_applied_generation"] = [](ServerHealth& h,
                                          const std::string& v) {
            h.repl_applied_generation =
                stat_u64(v, "repl_applied_generation");
        };
        return m;
    }();
    return table;
}

} // namespace

ServerHealth ServerHealth::from_fields(const std::vector<StatField>& fields) {
    ServerHealth health;
    const auto& setters = health_setters();
    for (const StatField& field : fields) {
        const auto it = setters.find(field.name);
        if (it == setters.end()) {
            health.extras[field.name] = field.value;  // forward-compat
            continue;
        }
        it->second(health, field.value);
    }
    return health;
}

Response handle_request(RequestEngine& engine, const Request& request) {
    try {
        Response response;
        switch (request.kind) {
        case Request::Kind::kPing:
            response.kind = Response::Kind::kPong;
            response.version = kProtocolVersion;
            return response;
        case Request::Kind::kQuit:
            response.kind = Response::Kind::kBye;
            return response;
        case Request::Kind::kLoad: {
            if (engine.read_only()) {
                return Response::make_error(
                    ErrorCode::kReadOnly,
                    "replica is read-only: LOAD rejected");
            }
            const auto set =
                engine.registry().load_csv(request.name, request.path);
            response.kind = Response::Kind::kLoaded;
            response.loaded.name = set->name;
            response.loaded.models = set->models.size();
            response.loaded.generation = set->generation;
            response.loaded.fingerprint = set->fingerprint;
            return response;
        }
        case Request::Kind::kModels: {
            response.kind = Response::Kind::kModels;
            for (const auto& set : engine.registry().snapshot()) {
                response.sets.push_back(ModelSetInfo{
                    set->name, set->generation, set->models.size()});
            }
            return response;
        }
        case Request::Kind::kStats:
            return make_stats_reply(engine.stats(), engine.registry().size());
        case Request::Kind::kHealth: {
            response.kind = Response::Kind::kHealth;
            response.health.live = true;
            response.health.models = engine.registry().size();
            response.health.ready = response.health.models > 0;
            response.health.faults_injected = fault::injected_total();
            response.health.degraded = engine.stats().degraded;
            static auto& recovered = obs::MetricsRegistry::global().gauge(
                "store.recovered_generation");
            response.health.recovered_generation =
                static_cast<std::uint64_t>(recovered.value());
            const ReplStatusSnapshot repl = ReplStatus::global().snapshot();
            response.health.role = repl.role;
            response.health.repl_lag_frames = repl.lag_frames;
            response.health.repl_lag_seconds = repl.lag_seconds;
            response.health.repl_source = repl.source;
            response.health.repl_applied_generation = repl.applied_generation;
            return response;
        }
        case Request::Kind::kPartition: {
            const PartitionResponse served = engine.execute(request.partition);
            response.kind = Response::Kind::kPartition;
            response.partition = make_partition_reply(request.partition, served);
            return response;
        }
        case Request::Kind::kFeedback: {
            response.kind = Response::Kind::kFeedback;
            response.feedback = engine.execute_feedback(request.feedback);
            return response;
        }
        }
        return Response::make_error(ErrorCode::kInternal, "unreachable");
    } catch (const ServiceError& e) {
        return Response::make_error(e.code(), e.what());
    } catch (const std::exception& e) {
        // Anything untyped from the engine is a server-side fault.
        return Response::make_error(ErrorCode::kInternal, e.what());
    }
}

std::string handle_line(RequestEngine& engine, const std::string& line) {
    try {
        return handle_request(engine, Request::decode(line)).encode();
    } catch (const ServiceError& e) {
        return Response::make_error(e.code(), e.what()).encode();
    } catch (const std::exception& e) {
        // Only Request::decode throws here, so the client sent a line
        // this revision cannot parse.
        return Response::make_error(ErrorCode::kBadRequest, e.what()).encode();
    }
}

std::uint64_t request_fingerprint(const Request& request) {
    const std::string line = request.encode();
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (const char ch : line) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

PartitionReply parse_partition_reply(const std::string& reply) {
    const Response response = Response::decode(reply);
    if (response.kind == Response::Kind::kError) {
        // Preserve the typed classification for callers that catch
        // ServiceError; the message keeps the legacy shape.
        throw ServiceError(response.error_code,
                           "server error: " + response.error);
    }
    FPM_CHECK(response.kind == Response::Kind::kPartition,
              "malformed partition reply: " + reply);
    return response.partition;
}

} // namespace fpm::serve

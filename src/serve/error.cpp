#include "fpm/serve/error.hpp"

#include <array>

namespace fpm::serve {

namespace {

/// Indexed by static_cast<std::size_t>(ErrorCode).
constexpr std::array<std::string_view, 7> kTokens = {
    "internal",          "busy",        "unsupported_verb",
    "feedback_disabled", "bad_request", "store_unavailable",
    "read_only",
};

} // namespace

std::string_view error_token(ErrorCode code) noexcept {
    const auto index = static_cast<std::size_t>(code);
    return index < kTokens.size() ? kTokens[index] : kTokens[0];
}

std::optional<ErrorCode> parse_error_token(std::string_view token) noexcept {
    for (std::size_t i = 0; i < kTokens.size(); ++i) {
        if (token == kTokens[i]) {
            return static_cast<ErrorCode>(i);
        }
    }
    return std::nullopt;
}

ErrorCode classify_legacy_error(std::string_view message) noexcept {
    if (message == "busy") {
        return ErrorCode::kBusy;
    }
    if (message.rfind("unknown command", 0) == 0) {
        return ErrorCode::kUnsupportedVerb;
    }
    if (message.rfind("feedback not enabled", 0) == 0) {
        return ErrorCode::kFeedbackDisabled;
    }
    return ErrorCode::kInternal;
}

} // namespace fpm::serve

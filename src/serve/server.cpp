#include "fpm/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fpm/common/error.hpp"

namespace fpm::serve {

namespace {

void send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // peer vanished; the read side will notice
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

SocketServer::SocketServer(RequestEngine& engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

SocketServer::SocketServer(RequestEngine& engine)
    : SocketServer(engine, Options{}) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
    FPM_CHECK(listen_fd_.load() < 0, "server already started");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FPM_CHECK(fd >= 0, std::string("socket(): ") + std::strerror(errno));

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
        ::close(fd);
        throw Error("invalid bind address: " + options_.bind_address);
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw Error("bind(" + options_.bind_address + ":" +
                    std::to_string(options_.port) + "): " + reason);
    }
    if (::listen(fd, options_.backlog) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw Error("listen(): " + reason);
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw Error("getsockname(): " + reason);
    }
    port_ = ntohs(bound.sin_port);
    listen_fd_.store(fd);
    stopping_.store(false);
    running_.store(true);
    accept_thread_ = std::thread([this]() { accept_loop(); });
}

void SocketServer::stop() {
    if (!running_.exchange(false)) {
        return;
    }
    stopping_.store(true);
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        // Knock blocked connection reads loose so their threads exit.
        std::lock_guard lock(conn_mutex_);
        for (const int fd : open_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard lock(conn_mutex_);
        threads.swap(conn_threads_);
    }
    for (auto& thread : threads) {
        if (thread.joinable()) {
            thread.join();
        }
    }
}

void SocketServer::track_fd(int fd) {
    std::lock_guard lock(conn_mutex_);
    open_fds_.insert(fd);
}

void SocketServer::untrack_fd(int fd) {
    std::lock_guard lock(conn_mutex_);
    open_fds_.erase(fd);
}

void SocketServer::accept_loop() {
    while (!stopping_.load()) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) {
            break;  // stop() already closed the listening socket
        }
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // listening socket closed by stop()
        }
        if (stopping_.load()) {
            ::close(client);
            break;
        }
        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        ++connections_;
        track_fd(client);
        std::lock_guard lock(conn_mutex_);
        conn_threads_.emplace_back(
            [this, client]() { serve_connection(client); });
    }
}

void SocketServer::serve_connection(int fd) {
    std::string pending;
    char chunk[4096];
    bool quit = false;
    while (!quit && !stopping_.load()) {
        const auto newline = pending.find('\n');
        if (newline == std::string::npos) {
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                break;  // EOF or error: client hung up
            }
            pending.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        std::string line = pending.substr(0, newline);
        pending.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty()) {
            continue;
        }
        // Partition compute runs on the engine's thread pool (bounding
        // compute concurrency); this thread only does the line I/O.
        std::string response;
        try {
            const Command command = parse_command(line);
            if (command.kind == Command::Kind::kPartition) {
                const PartitionResponse served =
                    engine_.submit(command.partition).get();
                response = format_partition_reply(command.partition, served);
            } else {
                if (command.kind == Command::Kind::kQuit) {
                    quit = true;
                }
                response = handle_line(engine_, line);
            }
        } catch (const std::exception& e) {
            std::string message = e.what();
            for (char& ch : message) {
                if (ch == '\n' || ch == '\r') {
                    ch = ' ';
                }
            }
            response = "ERR " + message;
        }
        send_all(fd, response + "\n");
    }
    untrack_fd(fd);
    ::close(fd);
}

} // namespace fpm::serve

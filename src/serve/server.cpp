#include "fpm/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/serve/reactor_metrics.hpp"

namespace fpm::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Reserved epoll tags; connection ids start above them.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kEventTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// A request line longer than this (no newline yet) is a hostile or
/// broken client; the connection is answered `ERR ...` and closed.
constexpr std::size_t kMaxRequestLine = 1 << 20;

std::uint64_t now_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    FPM_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
}

/// One response awaiting its slot in a connection's in-order pipeline.
struct PendingReply {
    std::uint64_t seq = 0;
    bool ready = false;
    std::string text;
    Clock::time_point queued;
};

/// Per-connection reactor state: buffers plus the response pipeline.
struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    std::size_t out_pos = 0;  ///< bytes of outbuf already written
    std::deque<PendingReply> pipeline;
    std::uint64_t next_seq = 0;
    bool closing = false;     ///< stop parsing; close once drained
    bool want_write = false;  ///< EPOLLOUT currently registered
    std::size_t accounted_bytes = 0;  ///< share of the buffered-bytes gauge
};

/// An engine completion travelling from a worker thread to the loop.
struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string text;  ///< fully encoded response line
};

/// The worker-to-loop mailbox.  Owned jointly by the reactor and every
/// in-flight engine callback (shared_ptr), so a callback that fires
/// after the server died still has somewhere safe to write; shutdown()
/// closes the eventfd and turns push() into a no-op.
class CompletionQueue {
public:
    explicit CompletionQueue(int event_fd) : event_fd_(event_fd) {}

    void push(Completion&& completion) {
        std::lock_guard lock(mutex_);
        if (!open_) {
            return;
        }
        items_.push_back(std::move(completion));
        wake_locked();
    }

    /// Wakes the loop without queueing anything (stop()).
    void wake() {
        std::lock_guard lock(mutex_);
        if (open_) {
            wake_locked();
        }
    }

    /// Loop side: clear the eventfd counter and take the batch.
    std::vector<Completion> drain() {
        std::uint64_t counter = 0;
        (void)::read(event_fd_, &counter, sizeof counter);
        std::lock_guard lock(mutex_);
        std::vector<Completion> batch;
        batch.swap(items_);
        return batch;
    }

    void shutdown() {
        std::lock_guard lock(mutex_);
        open_ = false;
        if (event_fd_ >= 0) {
            ::close(event_fd_);
            event_fd_ = -1;
        }
    }

private:
    void wake_locked() {
        const std::uint64_t one = 1;
        (void)::write(event_fd_, &one, sizeof one);
    }

    std::mutex mutex_;
    std::vector<Completion> items_;
    int event_fd_;
    bool open_ = true;
};

/// Hashed timing wheel for idle deadlines: schedule/cancel are O(1),
/// advance() visits only the slots the clock passed (capped at one lap).
class TimerWheel {
public:
    TimerWheel(std::uint64_t tick_ms, std::size_t slots)
        : tick_ms_(std::max<std::uint64_t>(tick_ms, 1)),
          buckets_(std::max<std::size_t>(slots, 2)) {}

    void reset(std::uint64_t now) { current_tick_ = now / tick_ms_; }

    void schedule(std::uint64_t id, std::uint64_t deadline_ms) {
        cancel(id);
        // Fire on the first tick strictly past the deadline, so an entry
        // never expires early.
        const std::uint64_t tick = deadline_ms / tick_ms_ + 1;
        const std::size_t slot = tick % buckets_.size();
        buckets_[slot][id] = deadline_ms;
        slot_of_[id] = slot;
    }

    void cancel(std::uint64_t id) {
        const auto it = slot_of_.find(id);
        if (it == slot_of_.end()) {
            return;
        }
        buckets_[it->second].erase(id);
        slot_of_.erase(it);
    }

    void advance(std::uint64_t now, std::vector<std::uint64_t>& expired) {
        const std::uint64_t target = now / tick_ms_;
        if (target <= current_tick_) {
            return;
        }
        const std::uint64_t steps = std::min<std::uint64_t>(
            target - current_tick_, buckets_.size());
        for (std::uint64_t step = 1; step <= steps; ++step) {
            auto& bucket = buckets_[(current_tick_ + step) % buckets_.size()];
            for (auto it = bucket.begin(); it != bucket.end();) {
                if (it->second <= now) {  // lapped entries stay for later
                    expired.push_back(it->first);
                    slot_of_.erase(it->first);
                    it = bucket.erase(it);
                } else {
                    ++it;
                }
            }
        }
        current_tick_ = target;
    }

    [[nodiscard]] std::uint64_t tick_ms() const noexcept { return tick_ms_; }

private:
    std::uint64_t tick_ms_;
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> buckets_;
    std::unordered_map<std::uint64_t, std::size_t> slot_of_;
    std::uint64_t current_tick_ = 0;
};

std::uint64_t seconds_to_ms(double seconds) {
    return static_cast<std::uint64_t>(seconds * 1e3);
}

/// Wheel geometry for a given idle timeout: ~8 ticks per timeout for
/// <= 12.5 % lateness, with enough slots that one timeout fits in a lap.
TimerWheel make_wheel(double idle_timeout) {
    if (idle_timeout <= 0.0) {
        return TimerWheel(1000, 16);
    }
    const std::uint64_t idle_ms =
        std::max<std::uint64_t>(seconds_to_ms(idle_timeout), 8);
    const std::uint64_t tick =
        std::clamp<std::uint64_t>(idle_ms / 8, 5, 1000);
    return TimerWheel(tick, static_cast<std::size_t>(idle_ms / tick + 4));
}

} // namespace

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

struct SocketServer::Reactor {
    SocketServer& server;
    RequestEngine& engine;
    const ServeConfig config;
    int epoll_fd = -1;
    int listen_fd = -1;
    std::shared_ptr<CompletionQueue> completions;
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
    TimerWheel wheel;
    std::atomic<bool> stop_requested{false};
    std::uint64_t next_id = kFirstConnId;

    Reactor(SocketServer& server_in, RequestEngine& engine_in,
            ServeConfig config_in, int epoll, int listener,
            std::shared_ptr<CompletionQueue> queue)
        : server(server_in),
          engine(engine_in),
          config(std::move(config_in)),
          epoll_fd(epoll),
          listen_fd(listener),
          completions(std::move(queue)),
          wheel(make_wheel(config.idle_timeout)) {}

    [[nodiscard]] static const ReactorMetrics& metrics() {
        return ReactorMetrics::get();
    }

    void reschedule_idle(std::uint64_t id) {
        if (config.idle_timeout > 0.0) {
            wheel.schedule(id, now_ms() + seconds_to_ms(config.idle_timeout));
        }
    }

    void update_buffered(Connection& conn) {
        const std::size_t now_bytes =
            conn.inbuf.size() + (conn.outbuf.size() - conn.out_pos);
        metrics().buffered_bytes.add(
            static_cast<std::int64_t>(now_bytes) -
            static_cast<std::int64_t>(conn.accounted_bytes));
        conn.accounted_bytes = now_bytes;
    }

    void close_conn(std::uint64_t id) {
        const auto it = conns.find(id);
        if (it == conns.end()) {
            return;
        }
        Connection& conn = *it->second;
        (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        wheel.cancel(id);
        metrics().open_connections.add(-1);
        metrics().buffered_bytes.add(
            -static_cast<std::int64_t>(conn.accounted_bytes));
        server.open_.fetch_sub(1);
        conns.erase(it);
    }

    void set_want_write(Connection& conn, bool want) {
        if (conn.want_write == want) {
            return;
        }
        conn.want_write = want;
        epoll_event event{};
        event.events = EPOLLIN | (want ? EPOLLOUT : 0U);
        event.data.u64 = conn.id;
        (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
    }

    void accept_ready() {
        for (;;) {
            const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;  // EAGAIN, or the listener went away
            }
            // Admission control against the *global* budget: reserve a
            // slot with one fetch_add (every reactor races on the same
            // atomic, so the pool as a whole never exceeds
            // max_connections), undo it on any failure below.
            if (server.open_.fetch_add(1) >= config.max_connections) {
                // One typed line, then the door.  The socket is fresh,
                // so the non-blocking send of a short line succeeds (or
                // the peer is already gone).
                server.open_.fetch_sub(1);
                metrics().rejected.add();
                const std::string reply =
                    Response::make_error(ErrorCode::kBusy).encode() + "\n";
                (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
                ::close(fd);
                continue;
            }
            static auto& accept_fault = fault::point("serve.accept");
            if (accept_fault.fire()) {
                // Simulated accept failure: the peer sees a raw close
                // (as if the listener's backlog dropped it) and must
                // reconnect.
                server.open_.fetch_sub(1);
                ::close(fd);
                continue;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

            auto conn = std::make_unique<Connection>();
            conn->fd = fd;
            conn->id = next_id++;
            epoll_event event{};
            event.events = EPOLLIN;
            event.data.u64 = conn->id;
            if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
                server.open_.fetch_sub(1);
                ::close(fd);
                continue;
            }
            metrics().accepted.add();
            metrics().open_connections.add(1);
            server.accepted_.fetch_add(1);
            reschedule_idle(conn->id);
            conns.emplace(conn->id, std::move(conn));
        }
    }

    /// Enqueues one request line into the connection's pipeline and
    /// either answers it inline (cheap commands, parse errors) or hands
    /// it to the engine pool (PARTITION).
    void handle_line_on(Connection& conn, const std::string& line) {
        const std::uint64_t seq = conn.next_seq++;
        if (!conn.pipeline.empty()) {
            metrics().pipelined.add();
        }
        conn.pipeline.push_back(PendingReply{seq, false, {}, Clock::now()});
        metrics().pipeline_depth.set(
            static_cast<std::int64_t>(conn.pipeline.size()));
        PendingReply& slot = conn.pipeline.back();

        Request request;
        try {
            request = Request::decode(line);
        } catch (const ServiceError& e) {
            slot.ready = true;
            slot.text = Response::make_error(e.code(), e.what()).encode();
            return;
        } catch (const std::exception& e) {
            // Decode failures are the client's malformed line.
            slot.ready = true;
            slot.text =
                Response::make_error(ErrorCode::kBadRequest, e.what()).encode();
            return;
        }
        if (request.kind == Request::Kind::kPartition) {
            // Cache hits answer on the loop thread — no pool hop, no
            // eventfd round trip.  STATS counts them exactly like the
            // pool's hit path.  A serve.cache fault skips the fast path
            // (simulated cache outage); the pool still answers.
            static auto& cache_fault = fault::point("serve.cache");
            if (!cache_fault.fire()) {
                if (auto cached =
                        engine.try_execute_cached(request.partition)) {
                    Response response;
                    response.kind = Response::Kind::kPartition;
                    response.partition =
                        make_partition_reply(request.partition, *cached);
                    slot.ready = true;
                    slot.text = response.encode();
                    return;
                }
            }
            // Compute goes to the engine's pool; the completion returns
            // to this loop through the eventfd mailbox and fills the
            // pipeline slot, keeping responses in request order.
            engine.submit_async(
                request.partition,
                [queue = completions, conn_id = conn.id, seq,
                 partition = request.partition](
                    RequestEngine::AsyncResult result) {
                    std::string text;
                    if (result.ok()) {
                        Response response;
                        response.kind = Response::Kind::kPartition;
                        response.partition =
                            make_partition_reply(partition, result.response);
                        text = response.encode();
                    } else {
                        text = Response::make_error(result.code, result.error)
                                   .encode();
                    }
                    queue->push(Completion{conn_id, seq, std::move(text)});
                });
            return;
        }
        if (request.kind == Request::Kind::kFeedback) {
            // Feedback never runs on the event loop: ingest/refine/
            // publish goes to the engine pool exactly like a partition
            // compute, so a burst of reports cannot stall PARTITION
            // replies (the off-hot-path requirement of fpm::adapt).
            engine.submit_feedback_async(
                request.feedback,
                [queue = completions, conn_id = conn.id,
                 seq](RequestEngine::FeedbackAsyncResult result) {
                    std::string text;
                    if (result.ok()) {
                        Response response;
                        response.kind = Response::Kind::kFeedback;
                        response.feedback = std::move(result.reply);
                        text = response.encode();
                    } else {
                        text = Response::make_error(result.code, result.error)
                                   .encode();
                    }
                    queue->push(Completion{conn_id, seq, std::move(text)});
                });
            return;
        }
        if (request.kind == Request::Kind::kQuit) {
            conn.closing = true;  // drop any pipelined input after QUIT
        }
        slot.ready = true;
        slot.text = handle_request(engine, request).encode();
    }

    /// Splits complete lines out of the read buffer; returns false when
    /// the connection died while flushing.
    bool parse_lines(Connection& conn) {
        while (!conn.closing) {
            const auto newline = conn.inbuf.find('\n');
            if (newline == std::string::npos) {
                if (conn.inbuf.size() > kMaxRequestLine) {
                    conn.pipeline.push_back(PendingReply{
                        conn.next_seq++, true,
                        Response::make_error(ErrorCode::kBadRequest,
                                             "request line too long")
                            .encode(),
                        Clock::now()});
                    conn.closing = true;
                }
                break;
            }
            std::string line = conn.inbuf.substr(0, newline);
            conn.inbuf.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            if (line.empty()) {
                continue;
            }
            handle_line_on(conn, line);
        }
        return flush_ready(conn);
    }

    /// Moves every leading ready reply into the write buffer (recording
    /// its queue-to-reply latency) and pushes bytes at the socket.
    bool flush_ready(Connection& conn) {
        while (!conn.pipeline.empty() && conn.pipeline.front().ready) {
            PendingReply& front = conn.pipeline.front();
            metrics().queue_to_reply_seconds.record(
                std::chrono::duration<double>(Clock::now() - front.queued)
                    .count());
            conn.outbuf += front.text;
            conn.outbuf += '\n';
            conn.pipeline.pop_front();
        }
        return try_write(conn);
    }

    /// Non-blocking write of the out buffer.  A hard send failure closes
    /// the connection and is counted — never silently swallowed.
    bool try_write(Connection& conn) {
        if (conn.out_pos < conn.outbuf.size()) {
            static auto& send_fault = fault::point("serve.send");
            if (send_fault.fire()) {
                // Simulated hard send failure, same path as EPIPE below:
                // counted, never silently swallowed.  The peer sees a
                // mid-stream close, i.e. a truncated reply.
                metrics().send_failures.add();
                close_conn(conn.id);
                return false;
            }
        }
        while (conn.out_pos < conn.outbuf.size()) {
            const ssize_t n =
                ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
                       conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
            if (n >= 0) {
                conn.out_pos += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EINTR) {
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                set_want_write(conn, true);
                update_buffered(conn);
                return true;
            }
            metrics().send_failures.add();
            close_conn(conn.id);
            return false;
        }
        conn.outbuf.clear();
        conn.out_pos = 0;
        set_want_write(conn, false);
        update_buffered(conn);
        if (conn.closing && conn.pipeline.empty()) {
            close_conn(conn.id);
            return false;
        }
        return true;
    }

    bool on_readable(Connection& conn) {
        static auto& recv_fault = fault::point("serve.recv");
        if (recv_fault.fire()) {
            // Simulated recv failure (ECONNRESET): drop the connection
            // with whatever was buffered, exactly like the error path
            // below.
            close_conn(conn.id);
            return false;
        }
        char chunk[16384];
        bool got_bytes = false;
        bool eof = false;
        for (;;) {
            const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
            if (n > 0) {
                if (!conn.closing) {
                    conn.inbuf.append(chunk, static_cast<std::size_t>(n));
                    got_bytes = true;
                }
                continue;  // drain until EAGAIN (level-triggered epoll)
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                break;
            }
            close_conn(conn.id);
            return false;
        }
        if (got_bytes) {
            reschedule_idle(conn.id);
            if (!parse_lines(conn)) {
                return false;
            }
        }
        if (eof) {
            conn.closing = true;  // serve what's queued, then hang up
            if (conn.pipeline.empty() && conn.out_pos >= conn.outbuf.size()) {
                close_conn(conn.id);
                return false;
            }
        }
        update_buffered(conn);
        return true;
    }

    void handle_completions() {
        for (Completion& completion : completions->drain()) {
            const auto it = conns.find(completion.conn_id);
            if (it == conns.end()) {
                continue;  // connection closed while computing
            }
            Connection& conn = *it->second;
            for (PendingReply& pending : conn.pipeline) {
                if (pending.seq == completion.seq) {
                    pending.ready = true;
                    pending.text = std::move(completion.text);
                    break;
                }
            }
            (void)flush_ready(conn);
        }
    }

    void expire_idle() {
        if (config.idle_timeout <= 0.0) {
            return;
        }
        std::vector<std::uint64_t> expired;
        wheel.advance(now_ms(), expired);
        for (const std::uint64_t id : expired) {
            const auto it = conns.find(id);
            if (it == conns.end()) {
                continue;
            }
            if (!it->second->pipeline.empty()) {
                reschedule_idle(id);  // waiting on compute, not idle
                continue;
            }
            metrics().idle_timeouts.add();
            close_conn(id);
        }
    }

    void run() {
        wheel.reset(now_ms());
        std::vector<epoll_event> events(128);
        bool draining = false;
        std::uint64_t drain_deadline = 0;
        for (;;) {
            if (!draining && stop_requested.load(std::memory_order_acquire)) {
                draining = true;
                if (listen_fd >= 0) {  // stop accepting
                    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd,
                                      nullptr);
                    ::close(listen_fd);
                    listen_fd = -1;
                }
                drain_deadline =
                    now_ms() + (config.drain_deadline > 0.0
                                    ? seconds_to_ms(config.drain_deadline)
                                    : 0);
                for (auto& [id, conn] : conns) {
                    conn->closing = true;
                }
            }
            if (draining) {
                const bool force = now_ms() >= drain_deadline;
                std::vector<std::uint64_t> done;
                for (const auto& [id, conn] : conns) {
                    if (force || (conn->pipeline.empty() &&
                                  conn->out_pos >= conn->outbuf.size())) {
                        done.push_back(id);
                    }
                }
                for (const std::uint64_t id : done) {
                    close_conn(id);
                }
                if (conns.empty()) {
                    break;
                }
            }

            int timeout_ms;
            if (draining) {
                const std::uint64_t now = now_ms();
                timeout_ms = static_cast<int>(std::min<std::uint64_t>(
                    drain_deadline > now ? drain_deadline - now : 0, 50));
            } else if (config.idle_timeout > 0.0 && !conns.empty()) {
                timeout_ms = static_cast<int>(wheel.tick_ms());
            } else {
                timeout_ms = -1;  // eventfd wakes us for stop()
            }

            const int n = ::epoll_wait(epoll_fd, events.data(),
                                       static_cast<int>(events.size()),
                                       timeout_ms);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;  // epoll fd gone; bail out
            }
            for (int i = 0; i < n; ++i) {
                const std::uint64_t tag = events[i].data.u64;
                if (tag == kListenTag) {
                    if (!draining) {
                        accept_ready();
                    }
                    continue;
                }
                if (tag == kEventTag) {
                    handle_completions();
                    continue;
                }
                const auto it = conns.find(tag);
                if (it == conns.end()) {
                    continue;  // closed earlier in this batch
                }
                Connection& conn = *it->second;
                const std::uint32_t mask = events[i].events;
                if (mask & (EPOLLHUP | EPOLLERR)) {
                    close_conn(tag);
                    continue;
                }
                bool alive = true;
                if (mask & EPOLLIN) {
                    alive = on_readable(conn);
                }
                if (alive && (mask & EPOLLOUT)) {
                    (void)try_write(conn);
                }
            }
            expire_idle();
        }

        std::vector<std::uint64_t> remaining;
        remaining.reserve(conns.size());
        for (const auto& [id, conn] : conns) {
            remaining.push_back(id);
        }
        for (const std::uint64_t id : remaining) {
            close_conn(id);
        }
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
        }
        ::close(epoll_fd);
        epoll_fd = -1;
    }
};

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(RequestEngine& engine, ServeConfig config)
    : engine_(engine), config_(std::move(config)) {}

SocketServer::SocketServer(RequestEngine& engine)
    : SocketServer(engine, ServeConfig{}) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
    FPM_CHECK(!running_.load() && reactors_.empty(), "server already started");
    const std::size_t pool =
        std::max<std::size_t>(config_.num_reactors, 1);
    port_ = config_.port;

    try {
        for (std::size_t i = 0; i < pool; ++i) {
            const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            FPM_CHECK(fd >= 0,
                      std::string("socket(): ") + std::strerror(errno));

            int epoll_fd = -1;
            int event_fd = -1;
            try {
                const int one = 1;
                ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
                if (pool > 1) {
                    // Every listener of the pool binds the same port;
                    // the kernel hashes incoming connections across
                    // them.  A single reactor skips the option so the
                    // default config reproduces prior releases exactly.
                    FPM_CHECK(::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT,
                                           &one, sizeof one) == 0,
                              std::string("setsockopt(SO_REUSEPORT): ") +
                                  std::strerror(errno));
                }

                sockaddr_in addr{};
                addr.sin_family = AF_INET;
                // port_ is config_.port for the first listener (possibly
                // 0 = ephemeral) and the concrete bound port after it.
                addr.sin_port = htons(port_);
                FPM_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                                      &addr.sin_addr) == 1,
                          "invalid bind address: " + config_.bind_address);
                FPM_CHECK(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                                 sizeof addr) == 0,
                          "bind(" + config_.bind_address + ":" +
                              std::to_string(port_) +
                              "): " + std::strerror(errno));
                FPM_CHECK(::listen(fd, config_.backlog) == 0,
                          std::string("listen(): ") + std::strerror(errno));
                set_nonblocking(fd);

                sockaddr_in bound{};
                socklen_t bound_len = sizeof bound;
                FPM_CHECK(::getsockname(fd,
                                        reinterpret_cast<sockaddr*>(&bound),
                                        &bound_len) == 0,
                          std::string("getsockname(): ") +
                              std::strerror(errno));
                port_ = ntohs(bound.sin_port);

                epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
                FPM_CHECK(epoll_fd >= 0,
                          std::string("epoll_create1(): ") +
                              std::strerror(errno));
                event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
                FPM_CHECK(event_fd >= 0,
                          std::string("eventfd(): ") + std::strerror(errno));

                epoll_event listen_event{};
                listen_event.events = EPOLLIN;
                listen_event.data.u64 = kListenTag;
                FPM_CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd,
                                      &listen_event) == 0,
                          std::string("epoll_ctl(listen): ") +
                              std::strerror(errno));
                epoll_event wake_event{};
                wake_event.events = EPOLLIN;
                wake_event.data.u64 = kEventTag;
                FPM_CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, event_fd,
                                      &wake_event) == 0,
                          std::string("epoll_ctl(eventfd): ") +
                              std::strerror(errno));
            } catch (...) {
                ::close(fd);
                if (epoll_fd >= 0) {
                    ::close(epoll_fd);
                }
                if (event_fd >= 0) {
                    ::close(event_fd);
                }
                throw;
            }

            auto queue = std::make_shared<CompletionQueue>(event_fd);
            reactors_.push_back(std::make_unique<Reactor>(
                *this, engine_, config_, epoll_fd, fd, std::move(queue)));
        }
    } catch (...) {
        // Roll back the reactors already built (no threads run yet, so
        // their fds are still ours to close).
        for (auto& reactor : reactors_) {
            reactor->completions->shutdown();  // closes the eventfd
            if (reactor->listen_fd >= 0) {
                ::close(reactor->listen_fd);
            }
            if (reactor->epoll_fd >= 0) {
                ::close(reactor->epoll_fd);
            }
        }
        reactors_.clear();
        port_ = 0;
        throw;
    }

    running_.store(true);
    ReactorMetrics::get().reactors.set(static_cast<std::int64_t>(pool));
    threads_.reserve(pool);
    for (auto& reactor : reactors_) {
        threads_.emplace_back(
            [reactor = reactor.get()]() { reactor->run(); });
    }
}

void SocketServer::stop() {
    if (!running_.exchange(false)) {
        return;
    }
    for (auto& reactor : reactors_) {
        reactor->stop_requested.store(true, std::memory_order_release);
        reactor->completions->wake();
    }
    for (auto& thread : threads_) {
        if (thread.joinable()) {
            thread.join();
        }
    }
    threads_.clear();
    for (auto& reactor : reactors_) {
        reactor->completions->shutdown();  // closes the eventfd
    }
    reactors_.clear();
    ReactorMetrics::get().reactors.set(0);
}

} // namespace fpm::serve

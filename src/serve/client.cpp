#include "fpm/serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "fpm/common/error.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/obs/metrics.hpp"

namespace fpm::serve {

namespace {

/// Process-global client-side counters (mirroring the engine's style).
struct ClientMetrics {
    obs::Counter& retries;
    obs::Counter& reconnects;
    obs::Counter& failovers;

    static const ClientMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const ClientMetrics metrics{
            registry.counter("serve.client.retries"),
            registry.counter("serve.client.reconnects"),
            registry.counter("serve.client.failovers")};
        return metrics;
    }
};

timeval to_timeval(double seconds) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec =
        static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
    return tv;
}

/// Connects with a deadline: the socket goes non-blocking, connect() is
/// polled for writability, and SO_ERROR reports the final outcome.  A
/// non-positive timeout falls back to a plain blocking connect().
void connect_with_timeout(int fd, const sockaddr_in& addr, double timeout) {
    using Kind = TransportError::Kind;
    if (timeout <= 0.0) {
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) != 0) {
            throw TransportError(
                Kind::kConnect,
                std::string("connect(): ") + std::strerror(errno));
        }
        return;
    }

    const int flags = ::fcntl(fd, F_GETFL, 0);
    FPM_CHECK(flags >= 0, std::string("fcntl(): ") + std::strerror(errno));
    FPM_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              std::string("fcntl(): ") + std::strerror(errno));

    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc != 0) {
        if (errno != EINPROGRESS) {
            throw TransportError(
                Kind::kConnect,
                std::string("connect(): ") + std::strerror(errno));
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const int timeout_ms = static_cast<int>(timeout * 1e3);
        int ready;
        do {
            ready = ::poll(&pfd, 1, timeout_ms);
        } while (ready < 0 && errno == EINTR);
        FPM_CHECK(ready >= 0, std::string("poll(): ") + std::strerror(errno));
        if (ready == 0) {
            throw TransportError(Kind::kTimeout, "connect(): timed out");
        }
        int err = 0;
        socklen_t len = sizeof err;
        FPM_CHECK(::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0,
                  std::string("getsockopt(): ") + std::strerror(errno));
        if (err != 0) {
            throw TransportError(
                Kind::kConnect,
                std::string("connect(): ") + std::strerror(err));
        }
    }

    FPM_CHECK(::fcntl(fd, F_SETFL, flags) == 0,
              std::string("fcntl(): ") + std::strerror(errno));
}

} // namespace

std::vector<Endpoint> parse_endpoint_list(const std::string& text,
                                          const std::string& default_host) {
    std::vector<Endpoint> endpoints;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string entry =
            text.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        FPM_CHECK(!entry.empty(), "empty endpoint in list: " + text);
        Endpoint endpoint;
        const std::size_t colon = entry.rfind(':');
        std::string port_text;
        if (colon == std::string::npos) {
            endpoint.host = default_host;
            port_text = entry;
        } else {
            endpoint.host = entry.substr(0, colon);
            port_text = entry.substr(colon + 1);
            FPM_CHECK(!endpoint.host.empty(),
                      "empty host in endpoint: " + entry);
        }
        errno = 0;
        char* end = nullptr;
        const long port = std::strtol(port_text.c_str(), &end, 10);
        FPM_CHECK(end != port_text.c_str() && *end == '\0' && errno == 0 &&
                      port > 0 && port <= 65535,
                  "malformed port in endpoint: " + entry);
        endpoint.port = static_cast<std::uint16_t>(port);
        endpoints.push_back(std::move(endpoint));
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    FPM_CHECK(!endpoints.empty(), "empty endpoint list");
    return endpoints;
}

ServeClient::ServeClient(const std::string& host, std::uint16_t port,
                         const ServeConfig& config)
    : ServeClient(std::vector<Endpoint>{Endpoint{host, port}}, config) {}

ServeClient::ServeClient(const std::string& host, std::uint16_t port)
    : ServeClient(host, port, ServeConfig{}) {}

ServeClient::ServeClient(std::vector<Endpoint> endpoints,
                         const ServeConfig& config)
    : endpoints_(std::move(endpoints)), config_(config) {
    FPM_CHECK(!endpoints_.empty(), "endpoint list is empty");
    open_connection();
}

ServeClient::~ServeClient() { close_fd(); }

void ServeClient::advance_endpoint() {
    if (endpoints_.size() < 2) {
        return;
    }
    active_ = (active_ + 1) % endpoints_.size();
    ++failovers_;
    ClientMetrics::get().failovers.add();
}

void ServeClient::open_connection() {
    // With a failover list every endpoint gets one attempt, starting at
    // the active one; a connect failure advances to the next.  The last
    // failure propagates when the whole list is down.
    for (std::size_t attempt = 0;; ++attempt) {
        try {
            const Endpoint& target = endpoints_[active_];
            // CLOEXEC so tools that fork (e.g. to spawn a pager) cannot
            // leak the connection into the child.
            fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            FPM_CHECK(fd_ >= 0,
                      std::string("socket(): ") + std::strerror(errno));
            buffer_.clear();

            try {
                sockaddr_in addr{};
                addr.sin_family = AF_INET;
                addr.sin_port = htons(target.port);
                FPM_CHECK(::inet_pton(AF_INET, target.host.c_str(),
                                      &addr.sin_addr) == 1,
                          "invalid server address: " + target.host);
                try {
                    connect_with_timeout(fd_, addr, config_.connect_timeout);
                } catch (const TransportError& e) {
                    throw TransportError(e.kind(), std::string(e.what()) +
                                                       " [" +
                                                       target.to_string() +
                                                       "]");
                }

                const int one = 1;
                ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
                if (config_.recv_timeout > 0.0) {
                    const timeval tv = to_timeval(config_.recv_timeout);
                    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
                    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
                }
            } catch (...) {
                ::close(fd_);
                fd_ = -1;
                throw;
            }
            return;
        } catch (const TransportError&) {
            if (attempt + 1 >= endpoints_.size()) {
                throw;
            }
            advance_endpoint();
        }
    }
}

void ServeClient::close_fd() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

void ServeClient::send_all(const std::string& framed) {
    using Kind = TransportError::Kind;
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                throw TransportError(Kind::kTimeout,
                                     "send(): timed out waiting for the server");
            }
            throw TransportError(Kind::kSend,
                                 std::string("send(): ") +
                                     std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string ServeClient::read_line() {
    using Kind = TransportError::Kind;
    char chunk[4096];
    for (;;) {
        const auto newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string reply = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!reply.empty() && reply.back() == '\r') {
                reply.pop_back();
            }
            return reply;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            throw TransportError(Kind::kTimeout,
                                 "recv(): timed out waiting for the server");
        }
        if (n < 0) {
            throw TransportError(Kind::kSend, std::string("recv(): ") +
                                                  std::strerror(errno));
        }
        if (n == 0) {
            // EOF.  An empty carry-over buffer means the server hung up
            // cleanly between replies; leftover bytes without a newline
            // mean the reply was torn mid-line — distinct failures with
            // distinct codes (a retrying caller treats both as
            // transport loss, a protocol test must tell them apart).
            if (buffer_.empty()) {
                throw TransportError(Kind::kPeerClosed,
                                     "server closed the connection");
            }
            const std::size_t torn = buffer_.size();
            buffer_.clear();
            throw TransportError(
                Kind::kTruncated,
                "server closed the connection mid-reply (" +
                    std::to_string(torn) + " bytes without a newline)");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string ServeClient::request(const std::string& line) {
    FPM_CHECK(fd_ >= 0, "client is not connected");
    const auto start = std::chrono::steady_clock::now();
    send_all(line + "\n");
    std::string reply = read_line();
    last_rtt_seconds_ = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return reply;
}

void ServeClient::send_lines(const std::vector<std::string>& lines) {
    FPM_CHECK(fd_ >= 0, "client is not connected");
    std::string framed;
    for (const std::string& line : lines) {
        framed += line;
        framed += '\n';
    }
    send_all(framed);
}

std::vector<std::string> ServeClient::read_replies(std::size_t count) {
    FPM_CHECK(fd_ >= 0, "client is not connected");
    std::vector<std::string> replies;
    replies.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        replies.push_back(read_line());
    }
    return replies;
}

std::vector<std::string>
ServeClient::pipeline(const std::vector<std::string>& lines) {
    send_lines(lines);
    return read_replies(lines.size());
}

Response ServeClient::call(const Request& req) {
    if (config_.max_retries <= 0 || req.kind == Request::Kind::kQuit) {
        return Response::decode(request(req.encode()));
    }

    // Retry mode: the encoded line is computed once and re-sent verbatim
    // on every attempt (idempotent re-send), and the jitter stream is
    // seeded from the request fingerprint so a given config + request
    // replays the same backoff schedule.
    const std::string line = req.encode();
    Rng jitter(config_.retry_seed ^ request_fingerprint(req));
    const auto backoff = [&](int attempt) {
        double delay = config_.backoff_base;
        for (int i = 1; i < attempt; ++i) {
            delay *= 2.0;
        }
        delay = std::min(delay, config_.backoff_max);
        delay *= 1.0 + config_.backoff_jitter * (jitter.uniform() - 0.5);
        if (delay > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
    };

    int attempt = 0;
    for (;;) {
        try {
            if (fd_ < 0) {
                ClientMetrics::get().reconnects.add();
                open_connection();
            }
            const Response response = Response::decode(request(line));
            if (response.kind == Response::Kind::kError &&
                response.error_code == ErrorCode::kBusy &&
                attempt < config_.max_retries) {
                // Admission rejection: the server also closed the
                // connection, so start fresh after the backoff.
                close_fd();
                ++attempt;
                ClientMetrics::get().retries.add();
                backoff(attempt);
                continue;
            }
            return response;
        } catch (const TransportError&) {
            // The connection is in an unknown state (a late reply would
            // desynchronise the stream): always drop it before deciding.
            // With a failover list, the next attempt starts against the
            // next endpoint — the active one just proved unreachable or
            // unresponsive.
            close_fd();
            if (attempt >= config_.max_retries) {
                throw;
            }
            advance_endpoint();
            ++attempt;
            ClientMetrics::get().retries.add();
            backoff(attempt);
        }
    }
}

PartitionReply ServeClient::partition(const PartitionRequest& req) {
    Request wire;
    wire.kind = Request::Kind::kPartition;
    wire.partition = req;
    const Response response = call(wire);
    if (response.kind == Response::Kind::kError) {
        throw ServiceError(response.error_code,
                           "server error: " + response.error);
    }
    FPM_CHECK(response.kind == Response::Kind::kPartition,
              "malformed partition reply");
    return response.partition;
}

FeedbackReply ServeClient::report_feedback(const FeedbackSample& sample) {
    Request wire;
    wire.kind = Request::Kind::kFeedback;
    wire.feedback = sample;
    const Response response = call(wire);
    if (response.kind == Response::Kind::kError) {
        // A pre-v4 server does not know the verb; decode() classified
        // its free-text `ERR unknown command: ...` as kUnsupportedVerb,
        // so one typed check covers old and new servers alike and
        // callers can tell "talk to a newer server" apart from "the
        // sample was rejected".
        if (response.error_code == ErrorCode::kUnsupportedVerb) {
            throw ServiceError(
                ErrorCode::kUnsupportedVerb,
                "unsupported verb: FEEDBACK requires protocol v" +
                    std::to_string(kProtocolVersion) +
                    " (server answered \"ERR " + response.error + "\")");
        }
        throw ServiceError(response.error_code,
                           "server error: " + response.error);
    }
    FPM_CHECK(response.kind == Response::Kind::kFeedback,
              "malformed FEEDBACK reply");
    return response.feedback;
}

void ServeClient::ping() {
    const std::string raw = request(Request{}.encode());  // kPing default
    const Response response = Response::decode(raw);
    if (response.kind == Response::Kind::kPong) {
        if (response.version != kProtocolVersion) {
            throw Error("protocol version mismatch: client speaks v" +
                        std::to_string(kProtocolVersion) +
                        ", server answered \"" + raw + "\"");
        }
        return;
    }
    throw Error("unexpected PING reply: " + raw);
}

ServerHealth ServeClient::health() {
    Request wire;
    wire.kind = Request::Kind::kHealth;
    const Response response = call(wire);
    if (response.kind == Response::Kind::kError) {
        throw ServiceError(response.error_code,
                           "server error: " + response.error);
    }
    FPM_CHECK(response.kind == Response::Kind::kHealth,
              "malformed HEALTH reply");
    return response.health;
}

ServerStats ServeClient::stats() {
    Request wire;
    wire.kind = Request::Kind::kStats;
    const Response response = call(wire);
    if (response.kind == Response::Kind::kError) {
        throw ServiceError(response.error_code,
                           "server error: " + response.error);
    }
    FPM_CHECK(response.kind == Response::Kind::kStats,
              "malformed STATS reply");
    return ServerStats::from_fields(response.stats);
}

} // namespace fpm::serve

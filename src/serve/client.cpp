#include "fpm/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "fpm/common/error.hpp"

namespace fpm::serve {

ServeClient::ServeClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    FPM_CHECK(fd_ >= 0, std::string("socket(): ") + std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw Error("invalid server address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string reason = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw Error("connect(" + host + ":" + std::to_string(port) +
                    "): " + reason);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

ServeClient::~ServeClient() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

std::string ServeClient::request(const std::string& line) {
    FPM_CHECK(fd_ >= 0, "client is not connected");
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error(std::string("send(): ") + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }

    char chunk[4096];
    for (;;) {
        const auto newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string reply = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!reply.empty() && reply.back() == '\r') {
                reply.pop_back();
            }
            return reply;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        FPM_CHECK(n > 0, "server closed the connection");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

PartitionReply ServeClient::partition(const PartitionRequest& req) {
    std::ostringstream line;
    line << "PARTITION " << req.model_set << ' ' << req.n << ' '
         << algorithm_name(req.algorithm);
    if (!req.with_layout) {
        line << " nolayout";
    }
    return parse_partition_reply(request(line.str()));
}

void ServeClient::ping() {
    const std::string reply = request("PING");
    FPM_CHECK(reply == "OK PONG", "unexpected PING reply: " + reply);
}

} // namespace fpm::serve

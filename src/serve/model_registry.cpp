#include "fpm/serve/model_registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fpm/common/error.hpp"
#include "fpm/core/model_io.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/serve/error.hpp"

namespace fpm::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
}

void hash_double(std::uint64_t& h, double value) {
    // Canonicalise so +0.0/-0.0 and NaN payloads cannot split the hash;
    // infinities (unbounded max_problem) keep their distinct bit pattern.
    if (value == 0.0) {
        value = 0.0;
    }
    const auto bits = std::bit_cast<std::uint64_t>(value);
    hash_bytes(h, &bits, sizeof bits);
}

} // namespace

std::uint64_t fingerprint_models(const std::vector<core::SpeedFunction>& models) {
    std::uint64_t h = kFnvOffset;
    const std::uint64_t count = models.size();
    hash_bytes(h, &count, sizeof count);
    for (const auto& model : models) {
        hash_bytes(h, model.name().data(), model.name().size());
        hash_double(h, model.max_problem());
        const std::uint64_t points = model.points().size();
        hash_bytes(h, &points, sizeof points);
        for (const auto& point : model.points()) {
            hash_double(h, point.x);
            hash_double(h, point.speed);
        }
    }
    return h;
}

std::shared_ptr<const ModelSet>
ModelRegistry::put(const std::string& name,
                   std::vector<core::SpeedFunction> models) {
    FPM_CHECK(!name.empty(), "model set name must not be empty");
    FPM_CHECK(name.find_first_of(" \t\r\n,=") == std::string::npos,
              "model set name must not contain whitespace, ',' or '=': " + name);
    FPM_CHECK(!models.empty(), "model set must hold at least one model");

    static auto& reload_fault = fault::point("serve.reload");
    if (reload_fault.fire()) {
        // Simulated reload failure (corrupt CSV, disk error): the
        // previous snapshot stays installed, exactly as with a real
        // load_speed_functions_csv throw.
        throw Error("injected fault: model registry reload");
    }

    auto set = std::make_shared<ModelSet>();
    set->name = name;
    set->fingerprint = fingerprint_models(models);
    set->models = std::move(models);

    std::lock_guard lock(mutex_);
    set->generation = next_generation_;
    if (observer_) {
        // Write-ahead: the durable store logs the candidate before the
        // registry commits.  A throw here vetoes the put — generation
        // counter and map are untouched, so registry and log can never
        // disagree about what was published.
        observer_(*set);
    }
    ++next_generation_;
    std::shared_ptr<const ModelSet> installed = std::move(set);
    sets_[name] = installed;
    return installed;
}

void ModelRegistry::set_put_observer(PutObserver observer) {
    std::lock_guard lock(mutex_);
    observer_ = std::move(observer);
}

std::shared_ptr<const ModelSet>
ModelRegistry::restore(const std::string& name,
                       std::vector<core::SpeedFunction> models,
                       std::uint64_t generation) {
    FPM_CHECK(!name.empty(), "model set name must not be empty");
    FPM_CHECK(!models.empty(), "model set must hold at least one model");
    FPM_CHECK(generation > 0, "restored generation must be positive");

    auto set = std::make_shared<ModelSet>();
    set->name = name;
    set->fingerprint = fingerprint_models(models);
    set->models = std::move(models);
    set->generation = generation;

    std::lock_guard lock(mutex_);
    next_generation_ = std::max(next_generation_, generation + 1);
    std::shared_ptr<const ModelSet> installed = std::move(set);
    sets_[name] = installed;
    return installed;
}

std::uint64_t ModelRegistry::next_generation() const {
    std::lock_guard lock(mutex_);
    return next_generation_;
}

std::shared_ptr<const ModelSet> ModelRegistry::load_csv(const std::string& name,
                                                        const std::string& path) {
    return put(name, core::load_speed_functions_csv(path));
}

std::shared_ptr<const ModelSet>
ModelRegistry::get(const std::string& name) const {
    auto set = find(name);
    if (set == nullptr) {
        // A client asking for a set that is not loaded is a caller
        // mistake, not a server fault — type it so the wire carries
        // `ERR bad_request ...` instead of `ERR internal ...`.
        throw ServiceError(ErrorCode::kBadRequest,
                           "unknown model set: " + name);
    }
    return set;
}

std::shared_ptr<const ModelSet>
ModelRegistry::find(const std::string& name) const {
    std::lock_guard lock(mutex_);
    const auto it = sets_.find(name);
    return it == sets_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const ModelSet>> ModelRegistry::snapshot() const {
    std::lock_guard lock(mutex_);
    std::vector<std::shared_ptr<const ModelSet>> sets;
    sets.reserve(sets_.size());
    for (const auto& [name, set] : sets_) {
        sets.push_back(set);
    }
    return sets;
}

std::size_t ModelRegistry::size() const {
    std::lock_guard lock(mutex_);
    return sets_.size();
}

} // namespace fpm::serve

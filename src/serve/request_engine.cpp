#include "fpm/serve/request_engine.hpp"

#include <chrono>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/obs/trace.hpp"
#include "fpm/part/request.hpp"

namespace fpm::serve {

namespace {

/// Process-global mirrors of the engine counters; per-engine state feeds
/// STATS, these feed MetricsRegistry::snapshot() and the trace tooling.
struct ServeMetrics {
    obs::Counter& requests;
    obs::Counter& computed;
    obs::Counter& coalesced;
    obs::Counter& cache_hits;
    obs::Counter& degraded;

    static const ServeMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const ServeMetrics metrics{
            registry.counter("serve.requests"),
            registry.counter("serve.computed"),
            registry.counter("serve.coalesced"),
            registry.counter("serve.cache_hits"),
            registry.counter("serve.degraded")};
        return metrics;
    }
};

/// FNV-1a of a set *name* — the stale-plan cache key hash, deliberately
/// independent of model content so it survives reloads.
std::uint64_t hash_name(const std::string& name) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

RequestEngine::RequestEngine(ModelRegistry& registry, Options options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_capacity,
             options.cache_shards == 0 ? 1 : options.cache_shards),
      stale_(options.cache_capacity),  // name-keyed, engine-lock guarded:
                                       // striping would buy nothing
      pool_(options.workers) {}

RequestEngine::RequestEngine(ModelRegistry& registry)
    : RequestEngine(registry, Options{}) {}

PartitionPlan RequestEngine::compute_plan(const ModelSet& set, std::int64_t n,
                                          Algorithm algorithm, bool with_layout,
                                          const part::FpmPartitionOptions& options) {
    obs::Span span("serve.compute", static_cast<std::uint64_t>(n));
    part::PartitionRequest request;
    request.models = set.models;
    request.n = n;
    request.algorithm = algorithm;
    request.with_layout = with_layout;
    request.options = options;

    PartitionPlan plan;
    static_cast<part::PartitionPlan&>(plan) = part::partition(request);
    plan.key = PlanKey{set.fingerprint, n, algorithm, with_layout};
    plan.generation = set.generation;
    return plan;
}

PartitionResponse RequestEngine::finish(double latency, Algorithm algorithm,
                                        std::shared_ptr<const PartitionPlan> plan,
                                        bool cache_hit, bool coalesced,
                                        bool degraded) {
    {
        std::lock_guard lock(stats_mutex_);
        latency_.add(latency);
    }
    latency_histograms_[static_cast<std::size_t>(algorithm)].record(latency);
    return PartitionResponse{std::move(plan), cache_hit, coalesced, degraded,
                             latency};
}

PlanKey RequestEngine::stale_key(const PartitionRequest& request) {
    return PlanKey{hash_name(request.model_set), request.n, request.algorithm,
                   request.with_layout};
}

std::optional<PartitionResponse>
RequestEngine::degrade(const PartitionRequest& request, const ModelSet* set,
                       double elapsed_seconds) {
    if (!options_.degraded) {
        return std::nullopt;
    }
    std::shared_ptr<const PartitionPlan> plan;
    {
        std::lock_guard lock(inflight_mutex_);
        plan = stale_.get(stale_key(request));
    }
    if (!plan && set != nullptr) {
        // Constant-performance fallback: an even split needs no model
        // quality, only the device count.  Computed directly (no cache,
        // no dedup, no injection point) so it cannot fail the same way
        // the primary path just did.
        try {
            plan = std::make_shared<const PartitionPlan>(
                compute_plan(*set, request.n, Algorithm::kEven,
                             request.with_layout, options_.partition));
        } catch (...) {
            plan = nullptr;  // infeasible workload: nothing to serve
        }
    }
    if (!plan) {
        return std::nullopt;
    }
    {
        std::lock_guard lock(stats_mutex_);
        ++degraded_;
    }
    ServeMetrics::get().degraded.add();
    return finish(elapsed_seconds, request.algorithm, std::move(plan), false,
                  false, true);
}

PartitionResponse RequestEngine::execute(const PartitionRequest& request) {
    obs::Span span("serve.execute", static_cast<std::uint64_t>(request.n));
    const ServeMetrics& metrics = ServeMetrics::get();
    metrics.requests.add();
    measure::WallTimer timer;
    {
        std::lock_guard lock(stats_mutex_);
        ++requests_;
    }
    FPM_CHECK(request.n > 0, "workload size must be positive");
    const auto set = registry_.find(request.model_set);
    if (!set) {
        if (auto fallback = degrade(request, nullptr, timer.elapsed())) {
            return *std::move(fallback);
        }
        // Caller mistake, not a server fault: `ERR bad_request ...`.
        throw ServiceError(ErrorCode::kBadRequest,
                           "unknown model set: " + request.model_set);
    }
    const PlanKey key{set->fingerprint, request.n, request.algorithm,
                      request.with_layout};

    // Single-flight: the cache lookup and the leader election happen
    // under one lock, so each request counts exactly one cache lookup
    // and at most one compute runs per key (a finishing leader caches
    // *before* erasing its in-flight entry, making the lookup here
    // conclusive).
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
        std::lock_guard lock(inflight_mutex_);
        if (auto plan = cache_.get(key)) {
            metrics.cache_hits.add();
            return finish(timer.elapsed(), request.algorithm, std::move(plan),
                          true, false);
        }
        if (const auto it = inflight_.find(key); it != inflight_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<InFlight>();
            flight->future = flight->promise.get_future().share();
            inflight_[key] = flight;
            leader = true;
        }
    }

    if (!leader) {
        if (options_.coalesce_deadline > 0.0) {
            const auto deadline = std::chrono::duration<double>(
                options_.coalesce_deadline);
            if (flight->future.wait_for(deadline) ==
                std::future_status::timeout) {
                // The leader is stuck (or fault-delayed); answer degraded
                // rather than stall the caller.  Without a degraded
                // answer we fall through and wait it out as before.
                if (auto fallback =
                        degrade(request, set.get(), timer.elapsed())) {
                    return *std::move(fallback);
                }
            }
        }
        std::shared_ptr<const PartitionPlan> plan;
        try {
            plan = flight->future.get();  // rethrows the leader's failure
        } catch (...) {
            if (auto fallback = degrade(request, set.get(), timer.elapsed())) {
                return *std::move(fallback);
            }
            throw;
        }
        {
            std::lock_guard lock(stats_mutex_);
            ++coalesced_;
        }
        metrics.coalesced.add();
        return finish(timer.elapsed(), request.algorithm, std::move(plan),
                      false, true);
    }

    try {
        static auto& compute_fault = fault::point("serve.compute");
        if (compute_fault.fire()) {
            throw Error("injected fault: serve.compute");
        }
        auto plan = std::make_shared<const PartitionPlan>(compute_plan(
            *set, request.n, request.algorithm, request.with_layout,
            options_.partition));
        cache_.put(key, plan);
        {
            std::lock_guard lock(inflight_mutex_);
            inflight_.erase(key);
            stale_.put(stale_key(request), plan);
        }
        flight->promise.set_value(plan);
        {
            std::lock_guard lock(stats_mutex_);
            ++computed_;
        }
        metrics.computed.add();
        return finish(timer.elapsed(), request.algorithm, std::move(plan),
                      false, false);
    } catch (...) {
        {
            std::lock_guard lock(inflight_mutex_);
            inflight_.erase(key);
        }
        flight->promise.set_exception(std::current_exception());
        if (auto fallback = degrade(request, set.get(), timer.elapsed())) {
            return *std::move(fallback);
        }
        throw;
    }
}

std::future<PartitionResponse>
RequestEngine::submit(const PartitionRequest& request) {
    return pool_.submit([this, request]() { return execute(request); });
}

std::optional<PartitionResponse>
RequestEngine::try_execute_cached(const PartitionRequest& request) {
    if (request.n <= 0) {
        return std::nullopt;  // execute() owns the error report
    }
    measure::WallTimer timer;
    std::shared_ptr<const ModelSet> set;
    try {
        set = registry_.get(request.model_set);
    } catch (...) {
        return std::nullopt;  // unknown set: same
    }
    const PlanKey key{set->fingerprint, request.n, request.algorithm,
                      request.with_layout};
    // No inflight_mutex_ here: the cache is internally synchronized (per
    // stripe), plans are immutable, and a racing miss simply falls back
    // to execute()'s conclusive locked lookup.  This is what lets N
    // reactors run their fast paths without serializing on the engine.
    std::shared_ptr<const PartitionPlan> plan = cache_.probe(key);
    if (!plan) {
        return std::nullopt;
    }
    const ServeMetrics& metrics = ServeMetrics::get();
    metrics.requests.add();
    metrics.cache_hits.add();
    {
        std::lock_guard lock(stats_mutex_);
        ++requests_;
    }
    return finish(timer.elapsed(), request.algorithm, std::move(plan), true,
                  false);
}

void RequestEngine::submit_async(const PartitionRequest& request,
                                 std::function<void(AsyncResult)> done) {
    (void)pool_.submit([this, request, done = std::move(done)]() {
        AsyncResult result;
        try {
            result.response = execute(request);
        } catch (const ServiceError& e) {
            result.error = e.what();
            result.code = e.code();
            if (result.error.empty()) {
                result.error = "partition failed";
            }
        } catch (const std::exception& e) {
            result.error = e.what();
            if (result.error.empty()) {
                result.error = "partition failed";
            }
        } catch (...) {
            result.error = "partition failed";
        }
        done(std::move(result));
    });
}

void RequestEngine::set_feedback_handler(FeedbackHandler handler) {
    std::lock_guard lock(feedback_mutex_);
    if (handler) {
        feedback_ = std::make_shared<const FeedbackHandler>(std::move(handler));
    } else {
        feedback_.reset();
    }
}

bool RequestEngine::feedback_enabled() const {
    std::lock_guard lock(feedback_mutex_);
    return feedback_ != nullptr;
}

FeedbackReply RequestEngine::execute_feedback(const FeedbackSample& sample) {
    if (read_only()) {
        throw ServiceError(ErrorCode::kReadOnly,
                           "replica is read-only: FEEDBACK rejected");
    }
    std::shared_ptr<const FeedbackHandler> handler;
    {
        std::lock_guard lock(feedback_mutex_);
        handler = feedback_;
    }
    if (handler == nullptr) {
        throw ServiceError(ErrorCode::kFeedbackDisabled,
                           "feedback not enabled");
    }
    return (*handler)(sample);
}

void RequestEngine::submit_feedback_async(
    const FeedbackSample& sample,
    std::function<void(FeedbackAsyncResult)> done) {
    (void)pool_.submit([this, sample, done = std::move(done)]() {
        FeedbackAsyncResult result;
        try {
            result.reply = execute_feedback(sample);
        } catch (const ServiceError& e) {
            result.error = e.what();
            result.code = e.code();
            if (result.error.empty()) {
                result.error = "feedback failed";
            }
        } catch (const std::exception& e) {
            result.error = e.what();
            if (result.error.empty()) {
                result.error = "feedback failed";
            }
        } catch (...) {
            result.error = "feedback failed";
        }
        done(std::move(result));
    });
}

void RequestEngine::invalidate_model(const std::string& name,
                                     std::uint64_t old_fingerprint) {
    cache_.erase_fingerprint(old_fingerprint);
    // The stale-plan cache keys on the name hash precisely so entries
    // survive reloads; a deliberate republish is the one event that must
    // drop them (the old content is now known-wrong, not just missing).
    std::lock_guard lock(inflight_mutex_);
    stale_.erase_fingerprint(hash_name(name));
}

EngineStats RequestEngine::stats() const {
    EngineStats stats;
    {
        std::lock_guard lock(stats_mutex_);
        stats.requests = requests_;
        stats.computed = computed_;
        stats.coalesced = coalesced_;
        stats.degraded = degraded_;
        stats.latency = latency_.summary();
    }
    for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
        stats.latency_by_algorithm[i] = latency_histograms_[i].snapshot();
    }
    stats.cache = cache_.stats();
    stats.cache_shards = cache_.shard_count();
    stats.cache_by_shard = cache_.shard_stats();
    return stats;
}

} // namespace fpm::serve

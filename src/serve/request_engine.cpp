#include "fpm/serve/request_engine.hpp"

#include <algorithm>

#include "fpm/common/error.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/part/partition.hpp"

namespace fpm::serve {

RequestEngine::RequestEngine(ModelRegistry& registry, Options options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.workers) {}

RequestEngine::RequestEngine(ModelRegistry& registry)
    : RequestEngine(registry, Options{}) {}

PartitionPlan RequestEngine::compute_plan(const ModelSet& set, std::int64_t n,
                                          Algorithm algorithm, bool with_layout,
                                          const part::FpmPartitionOptions& options) {
    FPM_CHECK(n > 0, "workload size must be positive");
    const auto& models = set.models;
    const double total = static_cast<double>(n) * static_cast<double>(n);

    part::Partition1D continuous;
    double balanced_time = 0.0;
    switch (algorithm) {
    case Algorithm::kFpm: {
        auto result = part::partition_fpm(models, total, options);
        continuous = std::move(result.partition);
        balanced_time = result.balanced_time;
        break;
    }
    case Algorithm::kCpm: {
        // The traditional baseline: each model collapses to its speed at
        // the even share (fpmpart_partition's --algorithm cpm).
        std::vector<double> speeds;
        speeds.reserve(models.size());
        const double share = total / static_cast<double>(models.size());
        for (const auto& model : models) {
            speeds.push_back(model.speed(std::min(share, model.max_problem())));
        }
        continuous = part::partition_cpm(speeds, total);
        break;
    }
    case Algorithm::kEven:
        continuous = part::partition_homogeneous(models.size(), total);
        break;
    }

    PartitionPlan plan;
    plan.key = PlanKey{set.fingerprint, n, algorithm, with_layout};
    plan.generation = set.generation;
    plan.balanced_time = balanced_time;

    auto rounded = part::round_partition(continuous, n * n, models);
    plan.makespan = part::makespan(
        models, std::span<const std::int64_t>(rounded.blocks));
    if (with_layout) {
        plan.layout = part::column_partition(n, rounded.blocks);
        plan.comm_cost = plan.layout.comm_cost();
    }
    plan.blocks = std::move(rounded.blocks);
    return plan;
}

PartitionResponse RequestEngine::finish(double latency,
                                        std::shared_ptr<const PartitionPlan> plan,
                                        bool cache_hit, bool coalesced) {
    {
        std::lock_guard lock(stats_mutex_);
        latency_.add(latency);
    }
    return PartitionResponse{std::move(plan), cache_hit, coalesced, latency};
}

PartitionResponse RequestEngine::execute(const PartitionRequest& request) {
    measure::WallTimer timer;
    {
        std::lock_guard lock(stats_mutex_);
        ++requests_;
    }
    const auto set = registry_.get(request.model_set);
    FPM_CHECK(request.n > 0, "workload size must be positive");
    const PlanKey key{set->fingerprint, request.n, request.algorithm,
                      request.with_layout};

    // Single-flight: the cache lookup and the leader election happen
    // under one lock, so each request counts exactly one cache lookup
    // and at most one compute runs per key (a finishing leader caches
    // *before* erasing its in-flight entry, making the lookup here
    // conclusive).
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
        std::lock_guard lock(inflight_mutex_);
        if (auto plan = cache_.get(key)) {
            return finish(timer.elapsed(), std::move(plan), true, false);
        }
        if (const auto it = inflight_.find(key); it != inflight_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<InFlight>();
            flight->future = flight->promise.get_future().share();
            inflight_[key] = flight;
            leader = true;
        }
    }

    if (!leader) {
        auto plan = flight->future.get();  // rethrows the leader's failure
        {
            std::lock_guard lock(stats_mutex_);
            ++coalesced_;
        }
        return finish(timer.elapsed(), std::move(plan), false, true);
    }

    try {
        auto plan = std::make_shared<const PartitionPlan>(compute_plan(
            *set, request.n, request.algorithm, request.with_layout,
            options_.partition));
        cache_.put(key, plan);
        {
            std::lock_guard lock(inflight_mutex_);
            inflight_.erase(key);
        }
        flight->promise.set_value(plan);
        {
            std::lock_guard lock(stats_mutex_);
            ++computed_;
        }
        return finish(timer.elapsed(), std::move(plan), false, false);
    } catch (...) {
        {
            std::lock_guard lock(inflight_mutex_);
            inflight_.erase(key);
        }
        flight->promise.set_exception(std::current_exception());
        throw;
    }
}

std::future<PartitionResponse>
RequestEngine::submit(const PartitionRequest& request) {
    return pool_.submit([this, request]() { return execute(request); });
}

EngineStats RequestEngine::stats() const {
    EngineStats stats;
    {
        std::lock_guard lock(stats_mutex_);
        stats.requests = requests_;
        stats.computed = computed_;
        stats.coalesced = coalesced_;
        stats.latency = latency_.summary();
    }
    stats.cache = cache_.stats();
    return stats;
}

} // namespace fpm::serve

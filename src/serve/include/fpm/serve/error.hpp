/// \file error.hpp
/// \brief Typed error codes of the partition-service protocol.
///
/// Until v5 every failure travelled as free text (`ERR <message>`) and
/// callers that needed to react to a *specific* failure — the client's
/// retry loop matching "busy", report_feedback() sniffing "unknown
/// command" — had to string-match.  v5 gives every error a stable
/// machine-readable token that leads the ERR line:
///
///     ERR <token> [<message>]
///
/// The tokens are a closed, append-only set (`error_token()` /
/// `parse_error_token()` below); the human-readable message after the
/// token stays free-form and may change between releases.  Decoders keep
/// accepting pre-v5 free-text ERR lines and map the well-known legacy
/// texts onto the same codes, so a v5 client talking to an old server
/// still gets typed errors (ErrorCode::kInternal when the text is
/// unrecognised).
///
/// ServiceError is the exception that carries a code through the stack:
/// the engine, the registry, the store and the protocol dispatcher all
/// throw it where the failure class is known, and handle_request()
/// preserves the code onto the wire.  Plain fpm::Error still works
/// everywhere and is reported as kInternal.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "fpm/common/error.hpp"

namespace fpm::serve {

/// Stable failure classes of the wire protocol, in wire-token order.
/// Append only — the tokens are a compatibility surface (documented in
/// docs/protocol.md; the docs test enforces the table).
enum class ErrorCode {
    kInternal = 0,      ///< unclassified server-side failure
    kBusy,              ///< admission control rejected the connection
    kUnsupportedVerb,   ///< unknown request verb (e.g. v4 FEEDBACK at v3)
    kFeedbackDisabled,  ///< FEEDBACK without an installed adapt handler
    kBadRequest,        ///< malformed arguments or unknown model set
    kStoreUnavailable,  ///< durable model store rejected the mutation
    kReadOnly,          ///< write verb sent to a replica (v6)
};

/// The wire token of `code` (never empty).
[[nodiscard]] std::string_view error_token(ErrorCode code) noexcept;

/// Maps a wire token back to its code; nullopt for unknown tokens (a
/// newer server, or a pre-v5 free-text message).
[[nodiscard]] std::optional<ErrorCode>
parse_error_token(std::string_view token) noexcept;

/// Classifies a pre-v5 free-text ERR message onto the code a v5 server
/// would have used: "busy" -> kBusy, "unknown command..." ->
/// kUnsupportedVerb, "feedback not enabled..." -> kFeedbackDisabled,
/// anything else -> kInternal.
[[nodiscard]] ErrorCode classify_legacy_error(std::string_view message) noexcept;

/// An fpm::Error that knows its protocol error class.  Thrown by the
/// serve/adapt/store layers where the class is known; handle_request()
/// and ServeClient preserve the code across the wire.
class ServiceError : public Error {
public:
    ServiceError(ErrorCode code, const std::string& message)
        : Error(message), code_(code) {}

    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

} // namespace fpm::serve

/// \file reactor_metrics.hpp
/// \brief The reactor's process-global obs instruments.
///
/// One resolution point for every `serve.reactor.*` metric, shared by
/// the reactor (which writes them) and the STATS builder in protocol.cpp
/// (which reads them back into the wire reply).  Instruments live in the
/// process-global MetricsRegistry, so STATS reflects every server that
/// ran in this process and the counters survive server restarts.
#pragma once

#include "fpm/obs/metrics.hpp"

namespace fpm::serve {

/// See file comment.
struct ReactorMetrics {
    obs::Gauge& open_connections;  ///< currently accepted connections
    obs::Gauge& buffered_bytes;    ///< sum of per-connection in+out buffers
    obs::Gauge& pipeline_depth;    ///< in-flight requests on one connection
                                   ///  (max() is the interesting reading)
    obs::Gauge& reactors;          ///< event-loop threads of the running
                                   ///  server (0 before any start())
    obs::Counter& accepted;
    obs::Counter& rejected;        ///< admission-control `ERR busy` closes
    obs::Counter& idle_timeouts;   ///< timer-wheel evictions
    obs::Counter& send_failures;   ///< write errors that closed a connection
    obs::Counter& pipelined;       ///< requests that arrived while earlier
                                   ///  ones were still in flight
    obs::Histogram& queue_to_reply_seconds;  ///< request parsed -> response
                                             ///  handed to the socket buffer

    static const ReactorMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const ReactorMetrics metrics{
            registry.gauge("serve.reactor.open_connections"),
            registry.gauge("serve.reactor.buffered_bytes"),
            registry.gauge("serve.reactor.pipeline_depth"),
            registry.gauge("serve.reactor.reactors"),
            registry.counter("serve.reactor.accepted"),
            registry.counter("serve.reactor.rejected"),
            registry.counter("serve.reactor.idle_timeouts"),
            registry.counter("serve.reactor.send_failures"),
            registry.counter("serve.reactor.pipelined"),
            registry.histogram("serve.reactor.queue_to_reply_seconds")};
        return metrics;
    }
};

} // namespace fpm::serve

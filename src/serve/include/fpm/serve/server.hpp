/// \file server.hpp
/// \brief Event-driven TCP server speaking the partition-service protocol.
///
/// One reactor thread owns every socket: an epoll loop over the
/// non-blocking listener, an eventfd (RequestEngine completions and
/// stop() wake-ups) and the per-connection sockets.  Connections carry
/// read/write buffers and a response pipeline, so a client may send many
/// request lines back-to-back; partition compute runs on the engine's
/// thread pool and each completion is posted back to the loop, which
/// writes responses strictly in request order.  Lifecycle management:
///
///  * admission control — accepts beyond ServeConfig::max_connections
///    are answered `ERR busy` and closed (serve.reactor.rejected);
///  * idle eviction — a timer wheel closes connections with no read
///    activity and nothing in flight for ServeConfig::idle_timeout;
///  * graceful drain — stop() stops accepting, flushes in-flight
///    responses for at most ServeConfig::drain_deadline, then closes.
///
/// Cheap commands (PING, STATS, MODELS) run inline on the loop; LOAD
/// also runs inline, so a slow model-CSV read briefly stalls the loop —
/// acceptable for an administrative command.  Port 0 picks an ephemeral
/// port; port() reports the bound one, which is how tests and the bench
/// avoid collisions.  Every reactor event feeds `serve.reactor.*`
/// metrics in the process-global obs registry, surfaced through STATS.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "fpm/serve/protocol.hpp"
#include "fpm/serve/serve_config.hpp"

namespace fpm::serve {

/// See file comment.
class SocketServer {
public:
    /// The engine (and its registry) must outlive the server.
    SocketServer(RequestEngine& engine, ServeConfig config);
    explicit SocketServer(RequestEngine& engine);  ///< default ServeConfig
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    /// Binds, listens and starts the reactor thread; throws fpm::Error
    /// on socket failures or if already started.
    void start();

    /// Graceful drain: stops accepting, lets in-flight requests finish
    /// and their responses flush (up to ServeConfig::drain_deadline),
    /// closes everything and joins the reactor thread.  Idempotent.
    void stop();

    /// Bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] bool running() const noexcept { return running_.load(); }

    /// Total connections accepted so far (admission rejects excluded).
    [[nodiscard]] std::size_t connections_accepted() const noexcept {
        return accepted_.load();
    }

    /// Currently open connections.
    [[nodiscard]] std::size_t open_connections() const noexcept {
        return open_.load();
    }

    [[nodiscard]] const ServeConfig& config() const noexcept {
        return config_;
    }

private:
    struct Reactor;  ///< the loop's state; lives only while running

    RequestEngine& engine_;
    ServeConfig config_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<std::size_t> accepted_{0};
    std::atomic<std::size_t> open_{0};
    std::unique_ptr<Reactor> reactor_;
    std::thread loop_thread_;
};

} // namespace fpm::serve

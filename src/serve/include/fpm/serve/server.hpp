/// \file server.hpp
/// \brief POSIX TCP server speaking the partition-service protocol.
///
/// Listens on a loopback-bound (configurable) TCP port and serves each
/// accepted connection on its own thread: the connection thread does the
/// line I/O while the partition work itself runs through the
/// RequestEngine's fpm::rt thread pool, which bounds compute
/// concurrency.  Port 0 picks an ephemeral port; port() reports the
/// bound one, which is how tests and the bench avoid collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fpm/serve/protocol.hpp"

namespace fpm::serve {

/// See file comment.
class SocketServer {
public:
    struct Options {
        std::uint16_t port = 0;               ///< 0 = ephemeral
        std::string bind_address = "127.0.0.1";
        int backlog = 64;
    };

    /// The engine (and its registry) must outlive the server.
    SocketServer(RequestEngine& engine, Options options);
    explicit SocketServer(RequestEngine& engine);  ///< default Options
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    /// Binds, listens and starts the accept loop; throws fpm::Error on
    /// socket failures or if already started.
    void start();

    /// Stops accepting, shuts every open connection down and joins all
    /// threads.  Idempotent.
    void stop();

    /// Bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] bool running() const noexcept { return running_.load(); }

    /// Total connections accepted so far.
    [[nodiscard]] std::size_t connections_accepted() const noexcept {
        return connections_.load();
    }

private:
    void accept_loop();
    void serve_connection(int fd);
    void track_fd(int fd);
    void untrack_fd(int fd);

    RequestEngine& engine_;
    Options options_;
    /// Atomic: stop() closes and clears it while accept_loop() reads it.
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> connections_{0};
    std::thread accept_thread_;
    std::mutex conn_mutex_;
    std::vector<std::thread> conn_threads_;
    std::set<int> open_fds_;
};

} // namespace fpm::serve

/// \file server.hpp
/// \brief Event-driven TCP server speaking the partition-service protocol.
///
/// The server runs a pool of ServeConfig::num_reactors reactor threads.
/// Each reactor owns its own epoll instance, its own non-blocking
/// listening socket and its own eventfd mailbox (RequestEngine
/// completions and stop() wake-ups); with more than one reactor the
/// listeners are bound with SO_REUSEPORT, so the kernel load-balances
/// accepted connections across them and a connection lives its whole
/// life on one reactor — there is no cross-reactor handoff on the hot
/// path and no shared reactor state to lock.  Connections carry
/// read/write buffers and a response pipeline, so a client may send many
/// request lines back-to-back; partition compute runs on the engine's
/// thread pool and each completion is posted back to the owning loop,
/// which writes responses strictly in request order.  Lifecycle
/// management:
///
///  * admission control — the ServeConfig::max_connections budget is
///    *global* (one atomic shared by the pool); accepts beyond it are
///    answered `ERR busy` and closed (serve.reactor.rejected);
///  * idle eviction — each reactor's timer wheel closes connections
///    with no read activity and nothing in flight for
///    ServeConfig::idle_timeout;
///  * graceful drain — stop() stops accepting on every listener, lets
///    each reactor flush its in-flight responses for at most
///    ServeConfig::drain_deadline, then closes.
///
/// Cheap commands (PING, STATS, MODELS) run inline on the owning loop;
/// LOAD also runs inline, so a slow model-CSV read briefly stalls that
/// one reactor — acceptable for an administrative command.  Port 0
/// picks an ephemeral port (the first listener binds it, the rest join
/// it via SO_REUSEPORT); port() reports the bound one, which is how
/// tests and the bench avoid collisions.  Every reactor event feeds the
/// process-global `serve.reactor.*` metrics, so STATS aggregates the
/// whole pool no matter which reactor answers it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "fpm/serve/protocol.hpp"
#include "fpm/serve/serve_config.hpp"

namespace fpm::serve {

/// See file comment.
class SocketServer {
public:
    /// The engine (and its registry) must outlive the server.
    SocketServer(RequestEngine& engine, ServeConfig config);
    explicit SocketServer(RequestEngine& engine);  ///< default ServeConfig
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    /// Binds every listener, then starts the reactor threads; throws
    /// fpm::Error on socket failures or if already started (nothing
    /// leaks on a mid-pool failure).
    void start();

    /// Graceful drain: stops accepting on every listener, lets each
    /// reactor's in-flight requests finish and their responses flush
    /// (up to ServeConfig::drain_deadline), closes everything and joins
    /// the reactor threads.  Idempotent.
    void stop();

    /// Bound port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] bool running() const noexcept { return running_.load(); }

    /// Total connections accepted so far (admission rejects excluded).
    [[nodiscard]] std::size_t connections_accepted() const noexcept {
        return accepted_.load();
    }

    /// Currently open connections (across all reactors; this is the
    /// global admission budget's live value).
    [[nodiscard]] std::size_t open_connections() const noexcept {
        return open_.load();
    }

    /// Reactor threads of the running pool (0 before start()).
    [[nodiscard]] std::size_t num_reactors() const noexcept {
        return reactors_.size();
    }

    [[nodiscard]] const ServeConfig& config() const noexcept {
        return config_;
    }

private:
    struct Reactor;  ///< one loop's state; lives only while running

    RequestEngine& engine_;
    ServeConfig config_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<std::size_t> accepted_{0};
    std::atomic<std::size_t> open_{0};  ///< global admission budget
    std::vector<std::unique_ptr<Reactor>> reactors_;
    std::vector<std::thread> threads_;
};

} // namespace fpm::serve

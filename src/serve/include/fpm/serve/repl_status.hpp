/// \file repl_status.hpp
/// \brief Process-global replication role/lag published into STATS/HEALTH.
///
/// The replication subsystem (fpm::repl) sits *above* fpm_serve in the
/// link graph, but the STATS/HEALTH replies are assembled down here in
/// protocol.cpp.  ReplStatus is the one-way letterbox between the two:
/// the Replicator (or fpmpart_serve's primary wiring) writes role,
/// source and lag as they change, and make_stats_reply()/HEALTH read a
/// consistent snapshot without linking against fpm_repl.  A process
/// that never touches replication reports the defaults — role=primary,
/// repl_source=-, zero lag — so the typed views always carry the
/// fields.
///
/// Lag semantics (documented in docs/replication.md):
///   * repl_lag_frames   — primary's committed generation (learned from
///     frames and heartbeats) minus the replica's applied generation.
///   * repl_lag_seconds  — staleness: seconds since the replica last
///     heard from its source (frame or heartbeat); 0 until the first
///     contact, frozen-and-growing once the primary dies.
///   * repl_applied_generation — last generation the replica applied.
#pragma once

#include <cstdint>
#include <string>

namespace fpm::serve {

/// One consistent read of the replication surface.
struct ReplStatusSnapshot {
    std::string role = "primary";    ///< "primary" or "replica"
    std::string source = "-";        ///< replica: upstream host:port
    std::uint64_t lag_frames = 0;    ///< committed minus applied generation
    double lag_seconds = 0.0;        ///< seconds since last upstream contact
    std::uint64_t applied_generation = 0;  ///< last applied generation
};

/// Process-global mutable replication status; see file comment.  All
/// methods are thread-safe.
class ReplStatus {
public:
    [[nodiscard]] static ReplStatus& global();

    void set_role(const std::string& role);
    void set_source(const std::string& source);

    /// Updates the generation pair the lag derives from and stamps the
    /// last-contact clock (monotonic).
    void record_contact(std::uint64_t committed_generation,
                        std::uint64_t applied_generation);

    /// Updates the applied generation without touching the contact clock
    /// (a locally-applied frame whose heartbeat is yet to arrive).
    void record_applied(std::uint64_t applied_generation);

    [[nodiscard]] ReplStatusSnapshot snapshot() const;

    /// Back to the defaults (tests; a replica promoted to primary).
    void reset();

private:
    ReplStatus() = default;

    struct Impl;
    [[nodiscard]] Impl& impl() const;
};

} // namespace fpm::serve

/// \file model_registry.hpp
/// \brief Thread-safe, versioned store of named model sets.
///
/// FPM construction is the expensive step of the paper's workflow (it
/// times real kernels under a reliability loop) while partitioning is
/// cheap and repeatable.  A long-running partition service therefore
/// keeps the built models resident and answers many queries against
/// them.  The registry maps a *set name* (e.g. "hybrid", "cpu") to an
/// immutable snapshot of its speed functions.
///
/// Snapshots are handed out as shared_ptr<const ModelSet>: a hot reload
/// (`put`/`load_csv` under an existing name) installs a new snapshot with
/// a higher generation but never mutates or frees the old one while
/// in-flight requests still hold it.  Each snapshot carries a content
/// fingerprint; the partition cache keys on the fingerprint rather than
/// the name, so reloading identical content keeps the cache warm and
/// reloading changed content naturally invalidates it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/core/speed_function.hpp"

namespace fpm::serve {

/// Immutable snapshot of one named set of device models.
struct ModelSet {
    std::string name;
    std::vector<core::SpeedFunction> models;
    std::uint64_t generation = 0;   ///< registry-wide monotone version
    std::uint64_t fingerprint = 0;  ///< content hash (names, points, caps)
};

/// FNV-1a content hash over every model's name, capacity and points.
/// Identical model data always hashes identically, independent of the
/// set name it is registered under.
[[nodiscard]] std::uint64_t
fingerprint_models(const std::vector<core::SpeedFunction>& models);

/// See file comment.
class ModelRegistry {
public:
    /// Durability hook: invoked for every put() with the fully-formed
    /// candidate snapshot (name, models, fingerprint, generation)
    /// *before* the registry commits it — write-ahead semantics.  A
    /// throwing observer vetoes the put: the registry keeps its previous
    /// content and generation counter, and the exception propagates to
    /// the caller.  The durable model store (fpm::store) installs itself
    /// here so no generation can be served that was not first logged.
    using PutObserver = std::function<void(const ModelSet&)>;

    /// Installs (or, with an empty function, removes) the put observer.
    /// The observer runs under the registry mutex, so appends are
    /// serialized in generation order; it must not call back into the
    /// registry.
    void set_put_observer(PutObserver observer);

    /// Installs (or replaces) the set under `name`; returns the new
    /// snapshot.  Throws fpm::Error for an empty name or empty model
    /// list, and rethrows a veto from the put observer (registry
    /// untouched).
    std::shared_ptr<const ModelSet> put(const std::string& name,
                                        std::vector<core::SpeedFunction> models);

    /// Recovery entry point: installs the set under `name` with the
    /// *explicit* generation it carried before the crash, advancing the
    /// registry's generation counter past it.  Bypasses the put observer
    /// (recovery must not re-log what it replays) and the serve.reload
    /// fault point.  Throws fpm::Error on invalid input.
    std::shared_ptr<const ModelSet>
    restore(const std::string& name, std::vector<core::SpeedFunction> models,
            std::uint64_t generation);

    /// The generation the next put() will assign (1 on a fresh registry).
    [[nodiscard]] std::uint64_t next_generation() const;

    /// Convenience: core::load_speed_functions_csv + put.
    std::shared_ptr<const ModelSet> load_csv(const std::string& name,
                                             const std::string& path);

    /// Current snapshot of `name`; throws fpm::Error when absent.
    [[nodiscard]] std::shared_ptr<const ModelSet> get(const std::string& name) const;

    /// Like get() but returns nullptr when absent.
    [[nodiscard]] std::shared_ptr<const ModelSet> find(const std::string& name) const;

    /// All current snapshots, in name order.
    [[nodiscard]] std::vector<std::shared_ptr<const ModelSet>> snapshot() const;

    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const ModelSet>> sets_;
    std::uint64_t next_generation_ = 1;
    PutObserver observer_;
};

} // namespace fpm::serve

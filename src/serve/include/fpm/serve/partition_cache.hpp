/// \file partition_cache.hpp
/// \brief LRU memoization of partitioning results.
///
/// A partition query is fully determined by (model content, workload
/// size, algorithm, layout on/off), so the service memoizes the computed
/// plan.  The key uses the model set's content *fingerprint*, not its
/// name: hot-reloading a set with identical content keeps its entries
/// valid, while changed content simply stops matching (stale entries
/// age out of the LRU tail).  Counters expose hit/miss/eviction totals
/// for the STATS wire command and the tests.
#pragma once

#include <compare>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "fpm/part/column2d.hpp"

namespace fpm::serve {

/// Partitioning algorithm selector (mirrors fpmpart_partition's
/// --algorithm flag: the paper's FPM, the CPM baseline, and even shares).
enum class Algorithm { kFpm, kCpm, kEven };

/// Lower-case wire/CLI name of the algorithm.
[[nodiscard]] const char* algorithm_name(Algorithm algorithm) noexcept;

/// Inverse of algorithm_name(); nullopt for unknown spellings.
[[nodiscard]] std::optional<Algorithm> parse_algorithm(std::string_view text) noexcept;

/// Cache key; see file comment.
struct PlanKey {
    std::uint64_t fingerprint = 0;
    std::int64_t n = 0;  ///< matrix size in blocks (workload = n*n)
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;

    auto operator<=>(const PlanKey&) const = default;
};

/// A fully computed partitioning answer: integer shares plus (optionally)
/// the column-based 2-D layout and its predicted quality metrics.
struct PartitionPlan {
    PlanKey key;
    std::uint64_t generation = 0;  ///< model-set generation that produced it
    std::vector<std::int64_t> blocks;
    part::ColumnLayout layout;  ///< rects empty when !key.with_layout
    double balanced_time = 0.0; ///< equalised time T (0 for cpm/even)
    double makespan = 0.0;      ///< predicted max_i t_i under the models
    std::int64_t comm_cost = 0; ///< half-perimeter sum (0 without layout)
};

/// Counter snapshot.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
};

/// Thread-safe LRU cache of shared immutable plans.
class PartitionCache {
public:
    /// `capacity` >= 1 entries.
    explicit PartitionCache(std::size_t capacity);

    /// Returns the cached plan and refreshes its recency, or nullptr.
    [[nodiscard]] std::shared_ptr<const PartitionPlan> get(const PlanKey& key);

    /// Inserts (or refreshes) `plan`, evicting the least recently used
    /// entry when full.
    void put(const PlanKey& key, std::shared_ptr<const PartitionPlan> plan);

    [[nodiscard]] CacheStats stats() const;
    void clear();

private:
    struct Entry {
        PlanKey key;
        std::shared_ptr<const PartitionPlan> plan;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_;  // front = most recently used
    std::map<PlanKey, std::list<Entry>::iterator> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace fpm::serve

/// \file partition_cache.hpp
/// \brief LRU memoization of partitioning results.
///
/// A partition query is fully determined by (model content, workload
/// size, algorithm, layout on/off), so the service memoizes the computed
/// plan.  The key uses the model set's content *fingerprint*, not its
/// name: hot-reloading a set with identical content keeps its entries
/// valid, while changed content simply stops matching (stale entries
/// age out of the LRU tail).  Counters expose hit/miss/eviction totals
/// for the STATS wire command and the tests.
#pragma once

#include <compare>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "fpm/part/request.hpp"

namespace fpm::serve {

/// The service speaks the library's algorithm vocabulary directly; the
/// one string mapping lives in fpm::part (to_string/parse_algorithm).
using Algorithm = part::Algorithm;

/// Cache key; see file comment.
struct PlanKey {
    std::uint64_t fingerprint = 0;
    std::int64_t n = 0;  ///< matrix size in blocks (workload = n*n)
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;

    auto operator<=>(const PlanKey&) const = default;
};

/// A served partitioning answer: the library's PartitionPlan plus the
/// cache identity and the model-set generation that produced it.
struct PartitionPlan : part::PartitionPlan {
    PlanKey key;
    std::uint64_t generation = 0;  ///< model-set generation that produced it
};

/// Counter snapshot.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
};

/// Thread-safe LRU cache of shared immutable plans.
class PartitionCache {
public:
    /// `capacity` >= 1 entries.
    explicit PartitionCache(std::size_t capacity);

    /// Returns the cached plan and refreshes its recency, or nullptr.
    [[nodiscard]] std::shared_ptr<const PartitionPlan> get(const PlanKey& key);

    /// get(), except a miss is not counted in stats() — for speculative
    /// probes (the reactor's cache-hit fast path) whose misses fall back
    /// to the counting path, so each request still records exactly one
    /// lookup.  A hit counts (and refreshes recency) as usual.
    [[nodiscard]] std::shared_ptr<const PartitionPlan>
    probe(const PlanKey& key);

    /// Inserts (or refreshes) `plan`, evicting the least recently used
    /// entry when full.
    void put(const PlanKey& key, std::shared_ptr<const PartitionPlan> plan);

    /// Drops every entry whose key carries `fingerprint`, regardless of
    /// (n, algorithm, layout); returns the number removed.  Model
    /// republication calls this so a refined model can never serve a plan
    /// fingerprinted against the old speed function — LRU aging alone
    /// would let such entries linger (and the stale-plan cache, keyed on
    /// a name hash, would never age them at all).
    std::size_t erase_fingerprint(std::uint64_t fingerprint);

    [[nodiscard]] CacheStats stats() const;
    void clear();

private:
    struct Entry {
        PlanKey key;
        std::shared_ptr<const PartitionPlan> plan;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_;  // front = most recently used
    std::map<PlanKey, std::list<Entry>::iterator> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace fpm::serve

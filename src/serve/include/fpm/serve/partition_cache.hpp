/// \file partition_cache.hpp
/// \brief Lock-striped sharded LRU memoization of partitioning results.
///
/// A partition query is fully determined by (model content, workload
/// size, algorithm, layout on/off), so the service memoizes the computed
/// plan.  The key uses the model set's content *fingerprint*, not its
/// name: hot-reloading a set with identical content keeps its entries
/// valid, while changed content simply stops matching (stale entries
/// age out of the LRU tail).
///
/// The cache is striped into a power-of-two number of independently
/// locked shards so that N reactor threads probing concurrently do not
/// serialize on one mutex.  The shard is chosen by a mixed hash of the
/// key's fingerprint — every entry of one model set lands in exactly one
/// shard, which keeps erase_fingerprint() a single-shard operation.
/// Recency and capacity are per shard (capacity is split evenly), so a
/// single-shard cache (the default) is an exact LRU with the same
/// counter semantics as prior releases.  Counters expose hit/miss/
/// eviction totals for the STATS wire command and the tests; per-shard
/// snapshots are exposed so tests can assert the shards sum to the
/// global counters.
#pragma once

#include <compare>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fpm/part/request.hpp"

namespace fpm::serve {

/// The service speaks the library's algorithm vocabulary directly; the
/// one string mapping lives in fpm::part (to_string/parse_algorithm).
using Algorithm = part::Algorithm;

/// Cache key; see file comment.
struct PlanKey {
    std::uint64_t fingerprint = 0;
    std::int64_t n = 0;  ///< matrix size in blocks (workload = n*n)
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;

    auto operator<=>(const PlanKey&) const = default;
};

/// A served partitioning answer: the library's PartitionPlan plus the
/// cache identity and the model-set generation that produced it.
struct PartitionPlan : part::PartitionPlan {
    PlanKey key;
    std::uint64_t generation = 0;  ///< model-set generation that produced it
};

/// Counter snapshot (one shard's or the whole cache's).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
};

/// Thread-safe sharded LRU cache of shared immutable plans.
class PartitionCache {
public:
    /// `capacity` >= 1 total entries, split evenly across `shards`
    /// stripes (each shard holds at least one entry).  `shards` is
    /// rounded up to the next power of two; 1 (the default) is an exact
    /// single-LRU cache.
    explicit PartitionCache(std::size_t capacity, std::size_t shards = 1);

    /// Returns the cached plan and refreshes its recency, or nullptr.
    [[nodiscard]] std::shared_ptr<const PartitionPlan> get(const PlanKey& key);

    /// get(), except a miss is not counted in stats() — for speculative
    /// probes (the reactor's cache-hit fast path) whose misses fall back
    /// to the counting path, so each request still records exactly one
    /// lookup.  A hit counts (and refreshes recency) as usual.
    [[nodiscard]] std::shared_ptr<const PartitionPlan>
    probe(const PlanKey& key);

    /// Inserts (or refreshes) `plan`, evicting the least recently used
    /// entry of the key's shard when that shard is full.
    void put(const PlanKey& key, std::shared_ptr<const PartitionPlan> plan);

    /// Drops every entry whose key carries `fingerprint`, regardless of
    /// (n, algorithm, layout); returns the number removed.  Model
    /// republication calls this so a refined model can never serve a plan
    /// fingerprinted against the old speed function — LRU aging alone
    /// would let such entries linger (and the stale-plan cache, keyed on
    /// a name hash, would never age them at all).  All entries of one
    /// fingerprint share a shard, so this locks exactly one stripe.
    std::size_t erase_fingerprint(std::uint64_t fingerprint);

    /// Sums the per-shard counters.
    [[nodiscard]] CacheStats stats() const;

    /// Per-shard counter snapshots, indexed by shard; sums to stats().
    [[nodiscard]] std::vector<CacheStats> shard_stats() const;

    /// Number of stripes (a power of two).
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

    void clear();

private:
    struct Entry {
        PlanKey key;
        std::shared_ptr<const PartitionPlan> plan;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru;  // front = most recently used
        std::map<PlanKey, std::list<Entry>::iterator> index;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Shard& shard_for(const PlanKey& key);
    const Shard& shard_for(const PlanKey& key) const;

    std::size_t shard_capacity_ = 0;  ///< per-shard entry budget
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace fpm::serve

/// \file protocol.hpp
/// \brief Typed messages of the partition-service wire protocol.
///
/// The wire format stays line-oriented text — one request line, one
/// response line, space-separated fields, values never contain spaces —
/// but nothing outside this module splices or splits those strings.
/// Every message is a typed struct with `encode()`/`decode()`, and the
/// reactor, ServeClient, the tools and the tests all speak structs:
///
///     PING                                    -> OK PONG v<version>
///     LOAD <name> <path>                      -> OK LOADED ...
///     PARTITION <model> <n> <algo> [nolayout] -> OK PARTITION ...
///     FEEDBACK <model> <dev> <x> <seconds>    -> OK FEEDBACK ...
///     MODELS                                  -> OK MODELS ...
///     STATS                                   -> OK STATS ...
///     HEALTH                                  -> OK HEALTH ...
///     QUIT                                    -> OK BYE
///
/// Failures are `ERR <code> [<message>]` since v5: the first token is a
/// stable machine-readable ErrorCode token (see error.hpp) and the rest
/// is the human diagnosis.  Pre-v5 servers sent free-text `ERR
/// <message>`; decode() recognises both, classifying legacy text onto
/// the nearest code, so a v5 client still types errors from an old
/// server.  Doubles travel as shortest-exact decimal (%.17g), so a
/// partition reply decoded by the client compares bit-for-bit with the
/// direct library call.  kProtocolVersion is the single revision
/// constant: PING carries it, ServeClient::ping() enforces it, and
/// nothing else restates it.
///
/// The normative wire-format specification (framing, field grammars,
/// the ERR taxonomy, degraded-reply semantics) lives in
/// docs/protocol.md; this header and that document must change together.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fpm/serve/error.hpp"
#include "fpm/serve/request_engine.hpp"

namespace fpm::serve {

/// Wire protocol revision.  v6 adds replication: the REPL verbs spoken
/// on the replication listener (HELLO handshake, framed FRAME/SNAP
/// records, PING heartbeats — see docs/replication.md), the
/// `read_only` ERR token replicas answer to write verbs, and the
/// replication fields (role, repl_lag_frames, repl_lag_seconds,
/// repl_source, repl_applied_generation) in STATS and HEALTH.  v5 types
/// failures (`ERR <code> [<message>]` with the stable ErrorCode
/// tokens), extends HEALTH to the extensible key=value ServerHealth
/// reply (recovered_generation), and adds the durable-store STATS
/// fields (store_*, recovered_generation).  v4 added the FEEDBACK verb
/// (online model refinement) and the adapt_* STATS fields; v3
/// introduced typed messages, the reactor's STATS fields (connection
/// gauges, queue-to-reply quantiles), the HEALTH request and the
/// PARTITION `degraded=` flag.  Clients must refuse to talk to a
/// server announcing a different revision (ServeClient::ping enforces
/// this); a v6 client sending FEEDBACK to a v3 server receives the v3
/// `ERR unknown command` reply, which ServeClient::report_feedback
/// surfaces as a typed unsupported-verb ServiceError.
inline constexpr int kProtocolVersion = 6;

/// A request message.  decode() parses a wire line (throws fpm::Error
/// with a client-safe message on unknown verbs, arity errors or
/// malformed numbers); encode() renders the line the client sends.
struct Request {
    enum class Kind { kPing, kLoad, kPartition, kFeedback, kModels, kStats,
                      kHealth, kQuit };

    Kind kind = Kind::kPing;
    PartitionRequest partition;  ///< kPartition
    FeedbackSample feedback;     ///< kFeedback
    std::string name;            ///< kLoad: registry name
    std::string path;            ///< kLoad: model CSV path

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static Request decode(const std::string& line);
};

/// Payload of an `OK PARTITION` response.
struct PartitionReply {
    std::string model;
    std::uint64_t generation = 0;
    std::int64_t n = 0;
    Algorithm algorithm = Algorithm::kFpm;
    bool cached = false;
    bool coalesced = false;
    /// Served from a stale plan or the constant-performance fallback
    /// because the requested model/compute was unavailable.
    bool degraded = false;
    double balanced_time = 0.0;
    double makespan = 0.0;
    std::int64_t comm_cost = 0;
    std::vector<std::int64_t> blocks;
    std::vector<part::Rect> rects;  ///< empty when the layout was not requested
};

/// Payload of an `OK LOADED` response.
struct LoadedReply {
    std::string name;
    std::uint64_t models = 0;
    std::uint64_t generation = 0;
    std::uint64_t fingerprint = 0;
};

/// One `key=value` field of an `OK STATS`/`OK HEALTH` response, in wire
/// order.  The value is pre-rendered (integers, or %.17g doubles) so the
/// field list is closed under encode()/decode() round trips.
struct StatField {
    std::string name;
    std::string value;
};

/// Payload of an `OK HEALTH` response: liveness (the process answered),
/// readiness (at least one model set is loaded), the degradation
/// counters an operator watches during fault drills, and — when a
/// durable store is configured — the generation recovered at startup.
/// Since v5 the reply is an open key=value list like STATS: unknown
/// fields land in `extras`, so probes keep working against newer
/// servers.  Use from_fields() (or ServeClient::health()) instead of
/// grepping the reply text.
struct ServerHealth {
    bool live = true;
    bool ready = false;
    std::uint64_t models = 0;           ///< registry size
    std::uint64_t faults_injected = 0;  ///< fault::injected_total()
    std::uint64_t degraded = 0;         ///< degraded partitions served
    /// Highest registry generation restored from the durable store at
    /// startup; 0 when no store is configured (or it was empty).
    std::uint64_t recovered_generation = 0;

    // -- replication (v6; defaults when replication is not configured) --
    std::string role = "primary";        ///< "primary" or "replica"
    std::uint64_t repl_lag_frames = 0;   ///< committed minus applied gen
    double repl_lag_seconds = 0.0;       ///< staleness vs the source
    std::string repl_source = "-";       ///< replica: upstream host:port
    std::uint64_t repl_applied_generation = 0;  ///< last applied gen

    /// Unknown `key=value` pairs, verbatim (forward compat).
    std::map<std::string, std::string> extras;

    /// Parses a decoded HEALTH field vector.  Throws fpm::Error when a
    /// *known* field carries a malformed value; unknown names land in
    /// `extras` untouched.
    [[nodiscard]] static ServerHealth
    from_fields(const std::vector<StatField>& fields);
};

/// Pre-v5 name of ServerHealth, kept for source compatibility.
using HealthReply = ServerHealth;

/// One registry entry in an `OK MODELS` response.
struct ModelSetInfo {
    std::string name;
    std::uint64_t generation = 0;
    std::uint64_t models = 0;
};

/// Per-algorithm request-latency quartet of an `OK STATS` reply
/// (`<algo>_count`, `<algo>_p50_us`, ...).
struct AlgorithmStats {
    std::uint64_t count = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
};

/// The typed view of an `OK STATS` reply: every field the current
/// protocol revision emits, plus `extras` holding any `key=value` pair
/// this build does not know (the forward-compat contract — decoders
/// ignore unknown keys, and this struct *preserves* them).  Produced by
/// from_fields() over a decoded StatField vector; consumed by
/// ServeClient::stats(), the fpmpart_serve shutdown dump and the tests,
/// none of which grep raw reply text anymore.
struct ServerStats {
    // -- engine -------------------------------------------------------
    std::uint64_t requests = 0;
    std::uint64_t computed = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t degraded = 0;
    double mean_latency_us = 0.0;
    double max_latency_us = 0.0;
    /// Indexed by static_cast<std::size_t>(Algorithm), like
    /// EngineStats::latency_by_algorithm.
    std::array<AlgorithmStats, kAlgorithmCount> by_algorithm{};

    // -- plan cache ---------------------------------------------------
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t cache_size = 0;
    std::uint64_t cache_shards = 0;  ///< lock stripes of the plan cache

    // -- registry / fault layer ---------------------------------------
    std::uint64_t models = 0;
    std::uint64_t faults = 0;

    // -- reactor pool (process-global gauges/counters) ----------------
    std::uint64_t reactors = 0;  ///< event-loop threads of the running pool
    std::int64_t open_conns = 0;
    std::int64_t buffered_bytes = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t idle_timeouts = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t pipelined = 0;
    std::int64_t pipeline_depth_max = 0;
    double q2r_p50_us = 0.0;
    double q2r_p95_us = 0.0;
    double q2r_p99_us = 0.0;

    // -- online adaptation --------------------------------------------
    std::uint64_t adapt_samples = 0;
    std::uint64_t adapt_reliable = 0;
    std::uint64_t adapt_drift = 0;
    std::uint64_t adapt_republished = 0;
    std::uint64_t adapt_model_version = 0;

    // -- durable model store ------------------------------------------
    std::uint64_t store_appended = 0;   ///< WAL records written
    std::uint64_t store_bytes = 0;      ///< WAL bytes written
    std::uint64_t store_snapshots = 0;  ///< compacted snapshots taken
    double store_fsync_p50_us = 0.0;
    double store_fsync_p95_us = 0.0;
    double store_fsync_p99_us = 0.0;
    std::uint64_t recovered_generation = 0;  ///< restored at startup

    // -- replication (v6; defaults when replication is not configured) --
    std::string role = "primary";        ///< "primary" or "replica"
    std::uint64_t repl_lag_frames = 0;   ///< committed minus applied gen
    double repl_lag_seconds = 0.0;       ///< staleness vs the source
    std::string repl_source = "-";       ///< replica: upstream host:port
    std::uint64_t repl_applied_generation = 0;  ///< last applied gen

    /// Unknown `key=value` pairs, verbatim (e.g. fields added by a newer
    /// server).  Known fields never appear here.
    std::map<std::string, std::string> extras;

    /// Parses a decoded STATS field vector.  Throws fpm::Error when a
    /// *known* field carries a malformed value; unknown names land in
    /// `extras` untouched.
    [[nodiscard]] static ServerStats
    from_fields(const std::vector<StatField>& fields);
};

/// A response message: a tagged struct mirroring Request.  decode()
/// never throws on `ERR` lines — they decode to kError — but throws
/// fpm::Error on structurally malformed replies.
struct Response {
    enum class Kind { kError, kPong, kBye, kLoaded, kModels, kStats,
                      kHealth, kPartition, kFeedback };

    Kind kind = Kind::kError;
    std::string error;                 ///< kError: human-readable message
    /// kError: the stable machine-readable classification.  Set by both
    /// make_error overloads and by decode() (which classifies pre-v5
    /// free-text errors via classify_legacy_error).
    ErrorCode error_code = ErrorCode::kInternal;
    int version = kProtocolVersion;    ///< kPong
    LoadedReply loaded;                ///< kLoaded
    std::vector<ModelSetInfo> sets;    ///< kModels
    std::vector<StatField> stats;      ///< kStats
    ServerHealth health;               ///< kHealth
    PartitionReply partition;          ///< kPartition
    FeedbackReply feedback;            ///< kFeedback

    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static Response decode(const std::string& line);

    /// Typed error; an empty `message` means the reply carries the code
    /// token alone (`ERR busy`), which is also how it decodes.
    [[nodiscard]] static Response make_error(ErrorCode code,
                                             const std::string& message = {});

    /// Legacy entry point: classifies the free-text message onto the
    /// nearest ErrorCode (classify_legacy_error) and keeps the text.
    [[nodiscard]] static Response make_error(const std::string& message);
};

/// Builds the typed partition payload for a served response.
[[nodiscard]] PartitionReply
make_partition_reply(const PartitionRequest& request,
                     const PartitionResponse& response);

/// Builds the STATS response: engine counters, cache, per-algorithm
/// latency quantiles, plus the reactor's gauges/counters, the
/// queue-to-reply quantiles, the adaptation counters (adapt_*) and the
/// durable-store instruments (store_*, recovered_generation), all read
/// from the process-global obs::MetricsRegistry (zero when no
/// server/adapter/store ran yet).
[[nodiscard]] Response make_stats_reply(const EngineStats& stats,
                                        std::size_t model_count);

/// Executes one decoded request against the engine (and its registry)
/// and returns the typed response; never throws — failures become
/// kError.  PARTITION and FEEDBACK run synchronously on the calling
/// thread; the reactor handles kPartition/kFeedback itself
/// (asynchronously, off the event loop) and uses this for everything
/// else.
[[nodiscard]] Response handle_request(RequestEngine& engine,
                                      const Request& request);

/// Line-in/line-out convenience used by tests and in-process callers:
/// decode, dispatch, encode.  Never throws; QUIT answers `OK BYE`
/// (hanging up is the transport's job).
[[nodiscard]] std::string handle_line(RequestEngine& engine,
                                      const std::string& line);

/// Decodes a reply expected to be `OK PARTITION ...`; throws fpm::Error
/// on `ERR` responses (carrying the server message) and on malformed or
/// differently-typed replies.
[[nodiscard]] PartitionReply parse_partition_reply(const std::string& reply);

/// Stable 64-bit fingerprint of a request's encoded wire line (FNV-1a).
/// ServeClient keys its retry jitter stream on this, so identical
/// requests replay the same backoff schedule.
[[nodiscard]] std::uint64_t request_fingerprint(const Request& request);

} // namespace fpm::serve

/// \file protocol.hpp
/// \brief The line-oriented text protocol of the partition service.
///
/// One request line, one response line; fields are space-separated,
/// values never contain spaces.  Commands:
///
///     PING
///     LOAD <name> <path>
///     PARTITION <model> <n> <algorithm> [nolayout]
///     MODELS
///     STATS
///     QUIT
///
/// Responses start with `OK` or `ERR <message>`.  Doubles travel as
/// shortest-exact decimal (%.17g), so a partition reply parsed back by
/// the client compares bit-for-bit with the direct library call.  The
/// parsing/formatting functions are shared by the socket server, the
/// client helper, the tests and the throughput bench so there is exactly
/// one implementation of the wire format.
#pragma once

#include <string>
#include <vector>

#include "fpm/serve/request_engine.hpp"

namespace fpm::serve {

/// Wire protocol revision.  PING answers `OK PONG v<kProtocolVersion>`;
/// clients must refuse to talk to a server announcing a different
/// revision (ServeClient::ping enforces this).
inline constexpr int kProtocolVersion = 2;

/// A parsed request line.
struct Command {
    enum class Kind { kPing, kLoad, kPartition, kModels, kStats, kQuit };

    Kind kind = Kind::kPing;
    PartitionRequest partition;  ///< kPartition
    std::string name;            ///< kLoad: registry name
    std::string path;            ///< kLoad: model CSV path
};

/// Parses one request line; throws fpm::Error with a client-safe message
/// on unknown commands, arity errors or malformed numbers.
[[nodiscard]] Command parse_command(const std::string& line);

/// Executes one request line against the engine (and its registry) and
/// returns the single-line response — `OK ...`, or `ERR <message>` for
/// any failure.  Never throws; QUIT answers `OK BYE` (hanging up is the
/// transport's job).
[[nodiscard]] std::string handle_line(RequestEngine& engine,
                                      const std::string& line);

/// Formats the `OK PARTITION ...` reply for a served response.
[[nodiscard]] std::string format_partition_reply(const PartitionRequest& request,
                                                 const PartitionResponse& response);

/// A partition reply decoded on the client side.
struct PartitionReply {
    std::string model;
    std::uint64_t generation = 0;
    std::int64_t n = 0;
    Algorithm algorithm = Algorithm::kFpm;
    bool cached = false;
    bool coalesced = false;
    double balanced_time = 0.0;
    double makespan = 0.0;
    std::int64_t comm_cost = 0;
    std::vector<std::int64_t> blocks;
    std::vector<part::Rect> rects;  ///< empty when the layout was not requested
};

/// Decodes an `OK PARTITION ...` line; throws fpm::Error on `ERR`
/// responses (carrying the server message) and on malformed replies.
[[nodiscard]] PartitionReply parse_partition_reply(const std::string& reply);

} // namespace fpm::serve

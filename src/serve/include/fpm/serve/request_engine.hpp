/// \file request_engine.hpp
/// \brief Concurrent execution of partition requests.
///
/// The engine is the service's compute heart: it resolves a request's
/// model set against the registry, consults the partition cache, and
/// otherwise runs the full library pipeline (1-D partitioner → integer
/// rounding → column 2-D layout) on an fpm::rt thread pool.
///
/// Identical requests that arrive while one of them is still computing
/// are *coalesced* (single-flight dedup): exactly one computation runs
/// and every waiter shares its result — the micro-batching the service
/// needs when a burst of clients asks for the same partition.  Per
/// request the engine records wall-clock latency into a
/// measure::RunningStats, surfaced through stats() and the STATS wire
/// command.
///
/// When Options::degraded is on (the default) the engine keeps serving
/// through disturbances instead of failing hard: a request whose model
/// set vanished, whose compute failed (e.g. a serve.compute fault
/// injection), or whose coalesced leader blew Options::coalesce_deadline
/// is answered from the *stale-plan cache* — the last plan computed for
/// the same (set name, n, algorithm, layout), surviving reloads that
/// change the content fingerprint — or, failing that, from a
/// constant-performance fallback (Algorithm::kEven even split), which
/// needs no model quality at all.  Degraded responses are flagged
/// (`PartitionResponse::degraded`, wire `degraded=1`) and counted in
/// EngineStats::degraded and the `serve.degraded` obs counter.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fpm/measure/stats.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/rt/thread_pool.hpp"
#include "fpm/serve/error.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/partition_cache.hpp"

namespace fpm::serve {

/// Number of Algorithm enumerators (indexes the per-algorithm stats).
inline constexpr std::size_t kAlgorithmCount = 3;

/// One partition query, as submitted by a client.
struct PartitionRequest {
    std::string model_set;                      ///< registry name
    std::int64_t n = 0;                         ///< n x n block matrix
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;
};

/// One served-execution measurement reported back by a client: device
/// `device` of set `model_set` finished a workload of `problem_size`
/// blocks in `seconds`.  The adaptation layer (fpm::adapt) folds these
/// into the speed functions; the engine itself only routes them.
struct FeedbackSample {
    std::string model_set;
    std::int64_t device = 0;
    double problem_size = 0.0;  ///< matrix area in blocks (the FPM's x)
    double seconds = 0.0;       ///< measured wall-clock execution time
};

/// What the adaptation layer did with one sample, echoed to the client.
struct FeedbackReply {
    std::string model_set;
    std::int64_t device = 0;
    std::uint64_t samples = 0;    ///< bucket sample count after ingest
    bool reliable = false;        ///< the bucket met the CI criterion
    bool drift = false;           ///< drift detected on this window
    bool republished = false;     ///< a refined model version was published
    std::uint64_t version = 0;    ///< current registry generation of the set
};

/// The answer plus how it was served.
struct PartitionResponse {
    std::shared_ptr<const PartitionPlan> plan;
    bool cache_hit = false;   ///< served straight from the cache
    bool coalesced = false;   ///< shared an identical in-flight computation
    bool degraded = false;    ///< stale or constant-model fallback answer
    double latency_seconds = 0.0;
};

/// Aggregate engine counters.
struct EngineStats {
    std::uint64_t requests = 0;
    std::uint64_t computed = 0;   ///< full pipeline executions
    std::uint64_t coalesced = 0;  ///< requests served by single-flight dedup
    std::uint64_t degraded = 0;   ///< stale/fallback answers served
    measure::Summary latency;     ///< per-request wall-clock seconds
    /// Per-algorithm request latency (seconds), indexed by
    /// static_cast<std::size_t>(Algorithm) — p50/p95/p99 feed the STATS
    /// wire reply.
    std::array<obs::HistogramSnapshot, kAlgorithmCount> latency_by_algorithm{};
    CacheStats cache;
    /// Stripe count of the plan cache (a power of two, >= 1).
    std::size_t cache_shards = 1;
    /// Per-stripe cache counters, indexed by shard; their field-wise sum
    /// equals `cache` (the STATS aggregation invariant the tests assert).
    std::vector<CacheStats> cache_by_shard;
};

/// See file comment.
class RequestEngine {
public:
    struct Options {
        unsigned workers = 4;             ///< thread-pool size for submit()
        std::size_t cache_capacity = 1024;
        /// Lock stripes of the plan cache (rounded up to a power of two;
        /// 0 is treated as 1).  Raise alongside ServeConfig::num_reactors
        /// so concurrent cache probes from N reactors do not serialize on
        /// one mutex; 1 keeps the exact single-LRU semantics.
        std::size_t cache_shards = 1;
        part::FpmPartitionOptions partition{};  ///< forwarded to the bisection
        /// Serve stale/fallback plans instead of failing when the model
        /// is missing or a compute fails (see file comment).
        bool degraded = true;
        /// Seconds a coalesced waiter waits for its leader before
        /// degrading (<= 0: wait forever, prior behaviour).
        double coalesce_deadline = 0.0;
    };

    /// The registry must outlive the engine.
    RequestEngine(ModelRegistry& registry, Options options);
    explicit RequestEngine(ModelRegistry& registry);  ///< default Options

    /// Runs the request on the calling thread (cache → dedup → compute).
    /// Throws fpm::Error for unknown model sets, n <= 0 or infeasible
    /// workloads; coalesced waiters rethrow the leader's exception.
    PartitionResponse execute(const PartitionRequest& request);

    /// Schedules execute() on the engine's thread pool.
    std::future<PartitionResponse> submit(const PartitionRequest& request);

    /// Outcome of an asynchronous execution: exactly one of response
    /// (when `error` is empty) or `error` (a client-safe message, with
    /// `code` its wire classification) is meaningful.
    struct AsyncResult {
        PartitionResponse response;
        std::string error;
        ErrorCode code = ErrorCode::kInternal;  ///< meaningful iff !ok()
        [[nodiscard]] bool ok() const noexcept { return error.empty(); }
    };

    /// Schedules execute() on the pool and invokes `done` with the
    /// outcome from the worker thread — failures arrive as
    /// AsyncResult::error instead of a thrown exception, so callers that
    /// cannot rethrow across threads (the serve reactor's event loop)
    /// get a complete result either way.  `done` must be callable after
    /// the caller has gone away if the caller can be destroyed before
    /// the engine drains (capture shared state by shared_ptr).
    void submit_async(const PartitionRequest& request,
                      std::function<void(AsyncResult)> done);

    /// Cache-hit fast path: answers from the plan cache without touching
    /// the thread pool, or returns nullopt when the request would need a
    /// compute (cache miss, unknown model set, invalid n) — callers fall
    /// back to submit_async() and the pool reports any error.  Counts
    /// exactly like execute()'s hit path, so STATS cannot tell the two
    /// apart.  The serve reactor probes this before paying the
    /// worker-thread round trip.
    [[nodiscard]] std::optional<PartitionResponse>
    try_execute_cached(const PartitionRequest& request);

    /// Handles one feedback sample; installed by the adaptation layer.
    /// Throws to reject the sample (the message travels as `ERR ...`).
    using FeedbackHandler = std::function<FeedbackReply(const FeedbackSample&)>;

    /// Installs (or, with an empty function, removes) the feedback
    /// handler.  The engine never interprets samples itself — without a
    /// handler FEEDBACK answers `ERR feedback not enabled` — so the
    /// serve layer stays free of any dependency on fpm::adapt.  The
    /// handler must stay callable until it is replaced and all in-flight
    /// feedback drains (see ~AdaptEngine).
    void set_feedback_handler(FeedbackHandler handler);

    [[nodiscard]] bool feedback_enabled() const;

    /// Read-only mode (a replica): every write verb — LOAD in
    /// handle_request(), FEEDBACK in execute_feedback() — is answered
    /// with a typed `ERR read_only` instead of mutating the registry.
    /// Reads (PARTITION/STATS/HEALTH/MODELS) are unaffected.
    void set_read_only(bool read_only) noexcept {
        read_only_.store(read_only, std::memory_order_relaxed);
    }
    [[nodiscard]] bool read_only() const noexcept {
        return read_only_.load(std::memory_order_relaxed);
    }

    /// Runs the installed handler on the calling thread.  Throws
    /// fpm::Error when feedback is not enabled or the handler rejects
    /// the sample.
    FeedbackReply execute_feedback(const FeedbackSample& sample);

    /// Outcome of an asynchronous feedback execution, mirroring
    /// AsyncResult: exactly one of `reply` or `error` is meaningful.
    struct FeedbackAsyncResult {
        FeedbackReply reply;
        std::string error;
        ErrorCode code = ErrorCode::kInternal;  ///< meaningful iff !ok()
        [[nodiscard]] bool ok() const noexcept { return error.empty(); }
    };

    /// Schedules execute_feedback() on the engine's thread pool — the
    /// off-hot-path routing the reactor uses, so ingest/refine/publish
    /// work never runs on the event loop.  Same lifetime rules as
    /// submit_async().
    void submit_feedback_async(const FeedbackSample& sample,
                               std::function<void(FeedbackAsyncResult)> done);

    /// Invalidates every cached answer derived from the previous content
    /// of model set `name`: plan-cache entries keyed on
    /// `old_fingerprint` *and* the name-keyed stale-plan entries (which
    /// survive reloads by design and therefore need an explicit drop on
    /// republish).  Called by the model publisher after a hot republish.
    void invalidate_model(const std::string& name,
                          std::uint64_t old_fingerprint);

    [[nodiscard]] EngineStats stats() const;

    [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }

    /// The direct library call the service must agree with: runs the full
    /// pipeline on a model-set snapshot, bypassing registry, cache and
    /// dedup.  Exposed so tests and benches can compare answers
    /// bit-for-bit.
    [[nodiscard]] static PartitionPlan
    compute_plan(const ModelSet& set, std::int64_t n, Algorithm algorithm,
                 bool with_layout,
                 const part::FpmPartitionOptions& options = {});

private:
    struct InFlight {
        std::promise<std::shared_ptr<const PartitionPlan>> promise;
        std::shared_future<std::shared_ptr<const PartitionPlan>> future;
    };

    PartitionResponse finish(double latency, Algorithm algorithm,
                             std::shared_ptr<const PartitionPlan> plan,
                             bool cache_hit, bool coalesced,
                             bool degraded = false);

    /// Stale-plan cache key: hashes the *set name* (not the content
    /// fingerprint), so the entry survives reloads and outages.
    [[nodiscard]] static PlanKey stale_key(const PartitionRequest& request);

    /// Degraded answer for `request`: stale plan first, else an even
    /// split over `set` (pass nullptr when no snapshot is available —
    /// then only the stale path can serve).  nullopt when degradation is
    /// disabled or impossible; the caller surfaces the original error.
    [[nodiscard]] std::optional<PartitionResponse>
    degrade(const PartitionRequest& request, const ModelSet* set,
            double elapsed_seconds);

    ModelRegistry& registry_;
    Options options_;
    PartitionCache cache_;
    PartitionCache stale_;  ///< name-keyed last-known-good plans
    rt::ThreadPool pool_;

    /// Shared so an in-flight pool task keeps the handler alive across a
    /// concurrent set_feedback_handler(); never touched by the partition
    /// hot path.
    mutable std::mutex feedback_mutex_;
    std::shared_ptr<const FeedbackHandler> feedback_;
    std::atomic<bool> read_only_{false};

    std::mutex inflight_mutex_;
    std::map<PlanKey, std::shared_ptr<InFlight>> inflight_;

    mutable std::mutex stats_mutex_;
    std::uint64_t requests_ = 0;
    std::uint64_t computed_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t degraded_ = 0;
    measure::RunningStats latency_;
    /// Lock-free per-algorithm latency; indexed like
    /// EngineStats::latency_by_algorithm.
    std::array<obs::Histogram, kAlgorithmCount> latency_histograms_;
};

} // namespace fpm::serve

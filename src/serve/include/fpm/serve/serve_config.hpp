/// \file serve_config.hpp
/// \brief The one typed knob set of the partition service transport.
///
/// Server (reactor), client and the fpmpart_serve tool all consume the
/// same struct, so a deployment's transport behaviour is described in
/// exactly one place: where the server binds, how many connections it
/// admits, when it evicts idle peers, how long stop() drains, and the
/// deadlines a client applies to connect and I/O.  Engine-side knobs
/// (workers, cache capacity) stay on RequestEngine::Options — they size
/// compute, not transport.
#pragma once

#include <cstdint>
#include <string>

namespace fpm::serve {

/// See file comment.  Durations are seconds; non-positive values disable
/// the respective deadline.
struct ServeConfig {
    // -- listener -----------------------------------------------------
    std::uint16_t port = 0;                 ///< 0 = ephemeral
    std::string bind_address = "127.0.0.1";
    int backlog = 64;

    // -- reactor pool -------------------------------------------------
    /// Event-loop threads.  Each reactor owns its own epoll instance and
    /// listening socket; with more than one, the sockets are bound with
    /// SO_REUSEPORT so the kernel load-balances accepted connections and
    /// no cross-reactor handoff exists on the hot path.  1 (the default)
    /// reproduces the single-reactor behaviour of prior releases exactly
    /// (no SO_REUSEPORT).  Clamped to >= 1.
    std::size_t num_reactors = 1;

    // -- reactor lifecycle --------------------------------------------
    /// Admission control: connections beyond this are answered with a
    /// one-line `ERR busy` and closed (counted in serve.reactor.rejected).
    /// The budget is global — shared by every reactor in the pool, not
    /// multiplied by num_reactors.
    std::size_t max_connections = 256;
    /// A connection with no read activity and nothing in flight for this
    /// long is evicted by the reactor's timer wheel.  <= 0 disables.
    double idle_timeout = 60.0;
    /// stop() stops accepting, then flushes in-flight responses for at
    /// most this long before force-closing the remaining connections.
    double drain_deadline = 5.0;

    // -- client deadlines ---------------------------------------------
    double connect_timeout = 5.0;  ///< non-blocking connect + poll
    double recv_timeout = 5.0;     ///< per send/recv (SO_RCVTIMEO/SNDTIMEO)

    // -- client retry (off by default) --------------------------------
    /// Extra attempts after the first failure of a retryable request
    /// (transport errors and `ERR busy`).  0 disables retry entirely:
    /// every failure surfaces immediately, as prior releases did.
    int max_retries = 0;
    /// First backoff; attempt k sleeps backoff_base * 2^(k-1), capped
    /// at backoff_max, then widened by +-(backoff_jitter/2) fraction.
    double backoff_base = 0.02;
    double backoff_max = 0.5;
    double backoff_jitter = 0.5;
    /// Seed for the deterministic per-request jitter stream (xor'd with
    /// the request fingerprint, so identical configs replay exactly).
    std::uint64_t retry_seed = 0;

    // -- durable model store (off by default) -------------------------
    /// Directory of the write-ahead log + snapshot store (fpm::store).
    /// Empty disables durability entirely: published models live only in
    /// RAM, as prior releases did.  fpmpart_serve recovers the registry
    /// from this directory before serving and logs every publish to it.
    std::string store_dir = "";
    /// WAL durability: "always" fdatasyncs every publish record before
    /// the publish is acknowledged (crash loses nothing acknowledged);
    /// "never" leaves flushing to the OS (bounded loss, no fsync stall).
    std::string fsync_policy = "always";
    /// Publishes between automatic compacted snapshots (WAL rotation +
    /// segment GC); 0 disables auto-snapshots — the final snapshot at
    /// graceful stop still happens.
    std::uint64_t snapshot_every = 8;
};

} // namespace fpm::serve

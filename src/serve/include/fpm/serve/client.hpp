/// \file client.hpp
/// \brief Blocking TCP client for the partition service.
///
/// One connection, one request line per round trip.  Used by the tests,
/// the throughput bench and anyone scripting against fpmpart_serve; the
/// typed partition() helper decodes the reply through the shared
/// protocol code so client-side values match the server bit-for-bit.
///
/// Every socket operation is bounded: connect() is attempted
/// non-blocking and polled against Options::connect_timeout, and reads
/// and writes carry SO_RCVTIMEO/SO_SNDTIMEO deadlines — a server that
/// accepts but never replies produces a clear "timed out" fpm::Error
/// instead of hanging the caller forever.
#pragma once

#include <cstdint>
#include <string>

#include "fpm/serve/protocol.hpp"

namespace fpm::serve {

/// See file comment.
class ServeClient {
public:
    struct Options {
        double connect_timeout = 5.0;  ///< seconds; <= 0 blocks forever
        double recv_timeout = 5.0;     ///< per send/recv, seconds; <= 0 blocks
    };

    /// Connects immediately; throws fpm::Error on failure or when the
    /// connection does not complete within Options::connect_timeout.
    ServeClient(const std::string& host, std::uint16_t port,
                const Options& options);
    ServeClient(const std::string& host, std::uint16_t port);  ///< default Options

    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /// Sends one request line (without trailing newline) and returns the
    /// response line.  Throws fpm::Error on I/O failure, server hangup
    /// or a reply that does not arrive within Options::recv_timeout.
    std::string request(const std::string& line);

    /// PARTITION round trip with a decoded reply; throws fpm::Error when
    /// the server answers ERR.
    PartitionReply partition(const PartitionRequest& req);

    /// PING round trip; throws fpm::Error unless the server answers
    /// `OK PONG v<kProtocolVersion>` — a mismatched revision is reported
    /// as a protocol version error, not silently tolerated.
    void ping();

private:
    int fd_ = -1;
    Options options_;
    std::string buffer_;  // carry-over bytes between request() calls
};

} // namespace fpm::serve

/// \file client.hpp
/// \brief Blocking TCP client for the partition service.
///
/// One connection, one request line per round trip.  Used by the tests,
/// the throughput bench and anyone scripting against fpmpart_serve; the
/// typed partition() helper decodes the reply through the shared
/// protocol code so client-side values match the server bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

#include "fpm/serve/protocol.hpp"

namespace fpm::serve {

/// See file comment.
class ServeClient {
public:
    /// Connects immediately; throws fpm::Error on failure.
    ServeClient(const std::string& host, std::uint16_t port);
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /// Sends one request line (without trailing newline) and returns the
    /// response line.  Throws fpm::Error on I/O failure or server hangup.
    std::string request(const std::string& line);

    /// PARTITION round trip with a decoded reply; throws fpm::Error when
    /// the server answers ERR.
    PartitionReply partition(const PartitionRequest& req);

    /// PING round trip; throws unless the server answers OK PONG.
    void ping();

private:
    int fd_ = -1;
    std::string buffer_;  // carry-over bytes between request() calls
};

} // namespace fpm::serve

/// \file client.hpp
/// \brief Blocking TCP client for the partition service.
///
/// One connection; request() does one line round trip, pipeline() writes
/// a whole batch of request lines before reading the batch of responses
/// — the client side of the reactor's request pipelining, and the shape
/// the throughput bench measures.  Typed helpers (partition(), ping())
/// encode and decode through the shared protocol structs, so
/// client-side values match the server bit-for-bit.
///
/// Deadlines come from the same ServeConfig the server consumes:
/// connect() is attempted non-blocking and polled against
/// ServeConfig::connect_timeout, and reads/writes carry
/// SO_RCVTIMEO/SO_SNDTIMEO deadlines of ServeConfig::recv_timeout — a
/// server that accepts but never replies produces a clear "timed out"
/// fpm::Error instead of hanging the caller forever.
///
/// Transport failures are typed (TransportError), distinguishing a
/// clean peer close from a reply truncated mid-line.  When
/// ServeConfig::max_retries > 0, call() (and the typed helpers built on
/// it) retries transport failures and `ERR busy` rejections with
/// exponential backoff + deterministic jitter, reconnecting and
/// re-sending the identical encoded line (requests are idempotent; the
/// jitter stream is keyed on the request fingerprint, so a given
/// config + request replays the same schedule).  Raw request()/
/// pipeline() never retry — batch callers own their own policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/serve/protocol.hpp"
#include "fpm/serve/serve_config.hpp"

namespace fpm::serve {

/// A client-side transport failure, typed by what actually happened on
/// the socket.  Derives fpm::Error, so callers that only care that the
/// round trip failed keep working unchanged.
class TransportError : public Error {
public:
    enum class Kind {
        kConnect,     ///< could not establish the connection
        kTimeout,     ///< connect/send/recv deadline expired
        kPeerClosed,  ///< clean EOF between replies (no partial data)
        kTruncated,   ///< EOF mid-reply: bytes arrived but no newline
        kSend,        ///< hard send failure (EPIPE, ECONNRESET, ...)
    };

    TransportError(Kind kind, const std::string& message)
        : Error(message), kind_(kind) {}

    [[nodiscard]] Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

/// One server address of an ordered failover list.
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;

    [[nodiscard]] std::string to_string() const {
        return host + ":" + std::to_string(port);
    }
    friend bool operator==(const Endpoint& a, const Endpoint& b) {
        return a.host == b.host && a.port == b.port;
    }
};

/// Parses a comma-separated endpoint list: each entry is `host:port` or
/// a bare `port` (which gets `default_host`).  Throws fpm::Error on an
/// empty list, a malformed port or an empty host.
[[nodiscard]] std::vector<Endpoint>
parse_endpoint_list(const std::string& text, const std::string& default_host);

/// See file comment.
class ServeClient {
public:
    /// Connects immediately; throws fpm::Error on failure or when the
    /// connection does not complete within ServeConfig::connect_timeout.
    ServeClient(const std::string& host, std::uint16_t port,
                const ServeConfig& config);
    ServeClient(const std::string& host, std::uint16_t port);  ///< defaults

    /// Failover form: an ordered endpoint list.  The connection is
    /// opened against the first endpoint that accepts (in list order);
    /// afterwards every typed transport error — on connect or
    /// mid-request — advances to the next endpoint (wrapping) before
    /// the retry/reconnect, so a dead primary fails over to its replica
    /// without the caller doing anything.  Each advance counts in
    /// failovers() and the process-global `serve.client.failovers`
    /// counter.  Throws when the list is empty or no endpoint accepts.
    ServeClient(std::vector<Endpoint> endpoints, const ServeConfig& config);

    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /// Sends one request line (without trailing newline) and returns the
    /// response line.  Throws fpm::Error on I/O failure, server hangup
    /// or a reply that does not arrive within ServeConfig::recv_timeout.
    std::string request(const std::string& line);

    /// Wall-clock duration of the most recent completed request() round
    /// trip, in seconds: a monotonic (steady_clock) start/stop taken
    /// immediately around the send and the reply read, so it includes
    /// kernel send/recv and server time but no client-side encode/decode.
    /// 0.0 until the first round trip completes; updated by request()
    /// and therefore by every typed helper built on it (call(),
    /// partition(), ...).  The load generator (fpm::loadgen) reads this
    /// instead of re-implementing timing around the socket.
    [[nodiscard]] double last_rtt_seconds() const noexcept {
        return last_rtt_seconds_;
    }

    /// Pipelines a batch: writes every line back-to-back, then reads
    /// exactly lines.size() response lines (the server answers in
    /// request order).  Throws like request(); on failure the
    /// connection state is unspecified and the client should be
    /// discarded.
    std::vector<std::string> pipeline(const std::vector<std::string>& lines);

    /// Half-duplex halves of pipeline(), for callers that keep several
    /// connections in flight at once: send_lines() writes a batch
    /// without reading, read_replies() reads `count` response lines.
    void send_lines(const std::vector<std::string>& lines);
    std::vector<std::string> read_replies(std::size_t count);

    /// Typed request round trip: encode, send, decode.  With
    /// ServeConfig::max_retries > 0 this is the retrying entry point
    /// (see file comment); QUIT is never retried.
    Response call(const Request& request);

    /// PARTITION round trip with a decoded reply; throws ServiceError
    /// (carrying the server's ErrorCode) when the server answers ERR.
    PartitionReply partition(const PartitionRequest& req);

    /// FEEDBACK round trip: reports one served-execution measurement and
    /// returns what the server's adaptation layer did with it.  Throws
    /// ServiceError when the server answers ERR; a pre-v5 server that
    /// does not know the verb (free-text `ERR unknown command`) is
    /// classified and surfaced as ErrorCode::kUnsupportedVerb, never as
    /// a transport/truncation failure.
    FeedbackReply report_feedback(const FeedbackSample& sample);

    /// PING round trip; throws fpm::Error unless the server answers a
    /// PONG carrying exactly kProtocolVersion — a mismatched revision is
    /// reported as a protocol version error, not silently tolerated.
    void ping();

    /// HEALTH round trip, fully typed: every known field parsed into
    /// ServerHealth (liveness, readiness, degradation counters, the
    /// store's recovered generation), unknown `key=value` pairs
    /// preserved in ServerHealth::extras.  Throws ServiceError when the
    /// server answers ERR.  Probes use this instead of grepping the raw
    /// reply line.
    ServerHealth health();

    /// STATS round trip, fully typed: every known field parsed into
    /// ServerStats, unknown `key=value` pairs preserved in
    /// ServerStats::extras.  Throws fpm::Error when the server answers
    /// ERR or a known field carries a malformed value.
    ServerStats stats();

    /// The endpoint the client is currently pointed at (it may not be
    /// connected right now).
    [[nodiscard]] const Endpoint& endpoint() const noexcept {
        return endpoints_[active_];
    }

    /// How many times this client advanced to another endpoint because
    /// of a typed transport error.  0 for a single-endpoint client.
    [[nodiscard]] std::uint64_t failovers() const noexcept {
        return failovers_;
    }

private:
    void open_connection();
    void close_fd() noexcept;
    void advance_endpoint();
    void send_all(const std::string& framed);
    std::string read_line();

    int fd_ = -1;
    double last_rtt_seconds_ = 0.0;
    std::vector<Endpoint> endpoints_;
    std::size_t active_ = 0;
    std::uint64_t failovers_ = 0;
    ServeConfig config_;
    std::string buffer_;  // carry-over bytes between reads
};

} // namespace fpm::serve

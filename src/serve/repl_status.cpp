#include "fpm/serve/repl_status.hpp"

#include <chrono>
#include <mutex>

namespace fpm::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

struct ReplStatus::Impl {
    mutable std::mutex mutex;
    std::string role = "primary";
    std::string source = "-";
    std::uint64_t committed = 0;
    std::uint64_t applied = 0;
    bool contacted = false;
    Clock::time_point last_contact{};
};

ReplStatus::Impl& ReplStatus::impl() const {
    static Impl instance;
    return instance;
}

ReplStatus& ReplStatus::global() {
    static ReplStatus instance;
    return instance;
}

void ReplStatus::set_role(const std::string& role) {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.role = role;
}

void ReplStatus::set_source(const std::string& source) {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.source = source;
}

void ReplStatus::record_contact(std::uint64_t committed_generation,
                                std::uint64_t applied_generation) {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.committed = committed_generation;
    state.applied = applied_generation;
    state.contacted = true;
    state.last_contact = Clock::now();
}

void ReplStatus::record_applied(std::uint64_t applied_generation) {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.applied = applied_generation;
    if (state.committed < applied_generation) {
        state.committed = applied_generation;
    }
}

ReplStatusSnapshot ReplStatus::snapshot() const {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    ReplStatusSnapshot out;
    out.role = state.role;
    out.source = state.source;
    out.lag_frames =
        state.committed > state.applied ? state.committed - state.applied : 0;
    out.applied_generation = state.applied;
    if (state.contacted) {
        out.lag_seconds =
            std::chrono::duration<double>(Clock::now() - state.last_contact)
                .count();
        if (out.lag_seconds < 0.0) {
            out.lag_seconds = 0.0;
        }
    }
    return out;
}

void ReplStatus::reset() {
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.role = "primary";
    state.source = "-";
    state.committed = 0;
    state.applied = 0;
    state.contacted = false;
}

} // namespace fpm::serve

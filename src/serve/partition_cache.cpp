#include "fpm/serve/partition_cache.hpp"

#include <bit>
#include <limits>

#include "fpm/common/error.hpp"

namespace fpm::serve {

namespace {

/// splitmix64 finalizer: the fingerprint is already a content hash, but
/// shard selection masks the *low* bits, so run them through a full
/// avalanche mix first.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

PartitionCache::PartitionCache(std::size_t capacity, std::size_t shards) {
    FPM_CHECK(capacity >= 1, "cache capacity must be positive");
    FPM_CHECK(shards >= 1, "cache shard count must be positive");
    const std::size_t rounded = std::bit_ceil(shards);
    shard_capacity_ = (capacity + rounded - 1) / rounded;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
    shards_.reserve(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

PartitionCache::Shard& PartitionCache::shard_for(const PlanKey& key) {
    return *shards_[mix64(key.fingerprint) & (shards_.size() - 1)];
}

const PartitionCache::Shard&
PartitionCache::shard_for(const PlanKey& key) const {
    return *shards_[mix64(key.fingerprint) & (shards_.size() - 1)];
}

std::shared_ptr<const PartitionPlan> PartitionCache::get(const PlanKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
    return it->second->plan;
}

std::shared_ptr<const PartitionPlan>
PartitionCache::probe(const PlanKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        return nullptr;  // not counted: the caller retries via get()
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->plan;
}

void PartitionCache::put(const PlanKey& key,
                         std::shared_ptr<const PartitionPlan> plan) {
    FPM_CHECK(plan != nullptr, "cannot cache a null plan");
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
        it->second->plan = std::move(plan);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
    shard.lru.push_front(Entry{key, std::move(plan)});
    shard.index[key] = shard.lru.begin();
}

std::size_t PartitionCache::erase_fingerprint(std::uint64_t fingerprint) {
    // Every key of one fingerprint maps to the same shard, and PlanKey
    // orders by fingerprint first, so the doomed entries form one
    // contiguous range of a single shard's index.
    Shard& shard = shard_for(
        PlanKey{fingerprint, 0, Algorithm::kFpm, false});
    std::lock_guard lock(shard.mutex);
    std::size_t removed = 0;
    auto it = shard.index.lower_bound(
        PlanKey{fingerprint, std::numeric_limits<std::int64_t>::min(),
                Algorithm::kFpm, false});
    while (it != shard.index.end() && it->first.fingerprint == fingerprint) {
        shard.lru.erase(it->second);
        it = shard.index.erase(it);
        ++removed;
    }
    return removed;
}

CacheStats PartitionCache::stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
        std::lock_guard lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.size += shard->lru.size();
    }
    return total;
}

std::vector<CacheStats> PartitionCache::shard_stats() const {
    std::vector<CacheStats> out;
    out.reserve(shards_.size());
    for (const auto& shard : shards_) {
        std::lock_guard lock(shard->mutex);
        out.push_back(CacheStats{shard->hits, shard->misses, shard->evictions,
                                 shard->lru.size()});
    }
    return out;
}

void PartitionCache::clear() {
    for (auto& shard : shards_) {
        std::lock_guard lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
    }
}

} // namespace fpm::serve

#include "fpm/serve/partition_cache.hpp"

#include <limits>

#include "fpm/common/error.hpp"

namespace fpm::serve {

PartitionCache::PartitionCache(std::size_t capacity) : capacity_(capacity) {
    FPM_CHECK(capacity >= 1, "cache capacity must be positive");
}

std::shared_ptr<const PartitionPlan> PartitionCache::get(const PlanKey& key) {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->plan;
}

std::shared_ptr<const PartitionPlan>
PartitionCache::probe(const PlanKey& key) {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        return nullptr;  // not counted: the caller retries via get()
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
}

void PartitionCache::put(const PlanKey& key,
                         std::shared_ptr<const PartitionPlan> plan) {
    FPM_CHECK(plan != nullptr, "cannot cache a null plan");
    std::lock_guard lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
        it->second->plan = std::move(plan);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(Entry{key, std::move(plan)});
    index_[key] = lru_.begin();
}

std::size_t PartitionCache::erase_fingerprint(std::uint64_t fingerprint) {
    std::lock_guard lock(mutex_);
    // PlanKey orders by fingerprint first, so the doomed entries form one
    // contiguous range of the index.
    std::size_t removed = 0;
    auto it = index_.lower_bound(
        PlanKey{fingerprint, std::numeric_limits<std::int64_t>::min(),
                Algorithm::kFpm, false});
    while (it != index_.end() && it->first.fingerprint == fingerprint) {
        lru_.erase(it->second);
        it = index_.erase(it);
        ++removed;
    }
    return removed;
}

CacheStats PartitionCache::stats() const {
    std::lock_guard lock(mutex_);
    return CacheStats{hits_, misses_, evictions_, lru_.size()};
}

void PartitionCache::clear() {
    std::lock_guard lock(mutex_);
    lru_.clear();
    index_.clear();
}

} // namespace fpm::serve

#include "fpm/obs/metrics.hpp"

#include <cmath>

namespace fpm::obs {

namespace {

/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS targets).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
    double seen = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
}

void atomic_min(std::atomic<double>& target, double candidate) noexcept {
    double seen = target.load(std::memory_order_relaxed);
    while (candidate < seen &&
           !target.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& target, double candidate) noexcept {
    double seen = target.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !target.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t Histogram::bucket_of(double value) noexcept {
    if (!std::isfinite(value) || value <= kReference) {
        return 0;
    }
    const double octaves = std::log2(value / kReference);
    const auto bucket = static_cast<std::size_t>(
        1.0 + octaves * static_cast<double>(kBucketsPerOctave));
    return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

double Histogram::bucket_midpoint(std::size_t bucket) noexcept {
    if (bucket == 0) {
        return kReference;
    }
    // Geometric midpoint of [2^((b-1)/8), 2^(b/8)) times the reference.
    const double octaves = (static_cast<double>(bucket) - 0.5) /
                           static_cast<double>(kBucketsPerOctave);
    return kReference * std::exp2(octaves);
}

void Histogram::record(double value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    const double clean = std::isfinite(value) && value > 0.0 ? value : 0.0;
    atomic_add(sum_, clean);
    if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
        // First observation seeds min/max; a racing second observation
        // still converges through the CAS loops below.
        min_.store(clean, std::memory_order_relaxed);
        max_.store(clean, std::memory_order_relaxed);
    }
    atomic_min(min_, clean);
    atomic_max(max_, clean);
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot snap;
    std::uint64_t per_bucket[kBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        per_bucket[i] = buckets_[i].load(std::memory_order_relaxed);
        total += per_bucket[i];
    }
    snap.count = total;
    snap.sum = sum_.load(std::memory_order_relaxed);
    if (total == 0) {
        return snap;
    }
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);

    const auto quantile = [&](double q) {
        const auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += per_bucket[i];
            if (seen > rank) {
                double value = bucket_midpoint(i);
                // The observed extremes are exact; clamp the bucket
                // estimate into them.
                value = std::max(value, snap.min);
                value = std::min(value, snap.max);
                return value;
            }
        }
        return snap.max;
    };
    snap.p50 = quantile(0.50);
    snap.p95 = quantile(0.95);
    snap.p99 = quantile(0.99);
    snap.p999 = quantile(0.999);
    return snap;
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) {
        bucket.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry instance;
    return instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        return *it->second;
    }
    return *counters_.emplace(std::string(name), std::make_unique<Counter>())
                .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
        return *it->second;
    }
    return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
                .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    std::lock_guard lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        return *it->second;
    }
    return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
                .first->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    std::lock_guard lock(mutex_);
    Snapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace(name, gauge->value());
    }
    for (const auto& [name, histogram] : histograms_) {
        snap.histograms.emplace(name, histogram->snapshot());
    }
    return snap;
}

void MetricsRegistry::reset_values() {
    std::lock_guard lock(mutex_);
    for (const auto& entry : counters_) {
        entry.second->reset();
    }
    for (const auto& entry : gauges_) {
        entry.second->reset();
    }
    for (const auto& entry : histograms_) {
        entry.second->reset();
    }
}

} // namespace fpm::obs

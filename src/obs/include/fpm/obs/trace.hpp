/// \file trace.hpp
/// \brief Scoped span tracing with a Chrome trace_event JSON exporter.
///
/// Spans give the serving stack the per-request timeline the paper's
/// Fig. 4/6 analyses rely on: wrap a scope in `obs::Span span("name");`
/// and, when tracing is enabled, the scope's wall-clock interval is
/// recorded into a per-thread ring buffer (lock-free: only the owning
/// thread writes, publication is one release store) and later exported
/// as Chrome `trace_event` JSON — load it in chrome://tracing or
/// https://ui.perfetto.dev.
///
/// When tracing is disabled (the default), constructing a Span costs one
/// relaxed atomic load and a branch — cheap enough to leave the
/// instrumentation in the hot paths permanently.  Enable tracing with
/// the `FPMPART_TRACE=/path/trace.json` environment variable (see
/// init_tracing_from_env(), called by every tool) or programmatically
/// via enable_tracing(); the file is written by flush_trace(), which is
/// also registered with atexit() on enable.
///
/// Buffers are append-only per process: each thread records up to
/// kThreadTraceCapacity events, further events are counted as dropped.
/// Span names must be string literals (or otherwise outlive the flush).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace fpm::obs {

namespace detail {

extern std::atomic<bool> g_trace_enabled;

/// Monotonic nanoseconds since the process trace epoch (first use).
[[nodiscard]] std::uint64_t now_ns() noexcept;

void record_complete_event(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns, std::uint64_t arg,
                           bool has_arg) noexcept;

} // namespace detail

/// Events recorded per thread before further ones are dropped.
inline constexpr std::size_t kThreadTraceCapacity = 1 << 16;

[[nodiscard]] inline bool tracing_enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Enables span recording and remembers `path` as the flush target.
/// Registers flush_trace() with atexit() on first enable.
void enable_tracing(std::string path);

/// Stops recording; already-recorded events stay flushable.
void disable_tracing() noexcept;

/// Enables tracing when FPMPART_TRACE is set and non-empty; returns
/// whether tracing is enabled afterwards.
bool init_tracing_from_env();

/// Writes all recorded events as Chrome trace JSON to the path given to
/// enable_tracing(); returns the number of events written (0 when no
/// path is configured).  Safe to call repeatedly and concurrently with
/// recording (events published before the call are included).
std::size_t flush_trace();

/// The exporter itself; usable directly by tests.  Returns events written.
std::size_t write_chrome_trace(std::ostream& out);

/// Events lost to full per-thread buffers since process start.
[[nodiscard]] std::uint64_t trace_events_dropped() noexcept;

/// RAII scoped span; see file comment.  The two-argument form attaches
/// one integer argument (exported as args.v — e.g. the workload size).
class Span {
public:
    explicit Span(const char* name) noexcept : Span(name, 0, false) {}
    Span(const char* name, std::uint64_t arg) noexcept : Span(name, arg, true) {}

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span() {
        if (start_ns_ != 0) {
            detail::record_complete_event(
                name_, start_ns_, detail::now_ns() - start_ns_, arg_, has_arg_);
        }
    }

private:
    Span(const char* name, std::uint64_t arg, bool has_arg) noexcept
        : name_(name), arg_(arg), has_arg_(has_arg) {
        if (tracing_enabled()) {
            start_ns_ = detail::now_ns();
        }
    }

    const char* name_;
    std::uint64_t start_ns_ = 0;  ///< 0 = constructed with tracing off
    std::uint64_t arg_;
    bool has_arg_;
};

} // namespace fpm::obs

/// \file metrics.hpp
/// \brief Low-overhead process-wide metrics: counters, gauges, histograms.
///
/// The paper's whole argument rests on measuring where time goes
/// (per-device kernel timing, contention analysis, per-process
/// profiles); this module gives the runtime and the serving stack the
/// same visibility at production cost.  Every primitive is thread-safe
/// and wait-free on the write path — a relaxed atomic increment — so the
/// hot paths (thread pool, request engine, partitioner) can stay
/// instrumented unconditionally.
///
/// Histogram uses fixed logarithmic buckets (8 per octave above a 1 ns
/// reference), so a record() is one log2 plus one relaxed increment and
/// quantile readout (p50/p95/p99) is a bucket walk with <= 9 % relative
/// error.  MetricsRegistry is the process-global name -> instrument map;
/// instrumentation sites resolve their instruments once (function-local
/// static references) and then never touch the registry lock again.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace fpm::obs {

/// Monotonically increasing event count.  Wait-free.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, bytes in flight) with a
/// high-watermark.  Wait-free.
class Gauge {
public:
    void set(std::int64_t value) noexcept {
        value_.store(value, std::memory_order_relaxed);
        update_max(value);
    }
    void add(std::int64_t delta) noexcept {
        const std::int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        update_max(now);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t max() const noexcept {
        return max_.load(std::memory_order_relaxed);
    }
    void reset() noexcept {
        value_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

private:
    void update_max(std::int64_t candidate) noexcept {
        std::int64_t seen = max_.load(std::memory_order_relaxed);
        while (candidate > seen &&
               !max_.compare_exchange_weak(seen, candidate,
                                           std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
};

/// Point-in-time view of a Histogram.
struct HistogramSnapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    double p50 = 0.0;  ///< log-bucket quantiles, <= ~9 % relative error
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;  ///< tail quantile the load generator reports

    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/// Fixed log-bucket histogram of positive values; see file comment.
/// The value unit is the caller's (name the metric accordingly, e.g.
/// "*_seconds"); the bucketed range is [1e-9, 1e-9 * 2^44) ~ 1 ns to
/// ~4.9 h when the unit is seconds, clamped at both ends.
class Histogram {
public:
    static constexpr double kReference = 1e-9;
    static constexpr std::size_t kBucketsPerOctave = 8;
    static constexpr std::size_t kOctaves = 44;
    static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves + 1;

    /// Records one observation.  Non-finite and negative values clamp to
    /// the reference bucket.  Thread-safe, lock-free.
    void record(double value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    /// Consistent-enough view under concurrent writers (counters are read
    /// relaxed; quantiles derive from the bucket walk).
    [[nodiscard]] HistogramSnapshot snapshot() const;

    void reset() noexcept;

private:
    [[nodiscard]] static std::size_t bucket_of(double value) noexcept;
    [[nodiscard]] static double bucket_midpoint(std::size_t bucket) noexcept;

    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
    std::atomic<double> max_{0.0};
};

/// Process-global name -> instrument map.  Lookup takes a mutex; cache
/// the returned reference (instruments are never destroyed or moved for
/// the life of the process).
class MetricsRegistry {
public:
    [[nodiscard]] static MetricsRegistry& global();

    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);

    /// All current instruments, by name.
    struct Snapshot {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, std::int64_t> gauges;
        std::map<std::string, HistogramSnapshot> histograms;
    };
    [[nodiscard]] Snapshot snapshot() const;

    /// Zeroes every instrument *in place* (references stay valid) — for
    /// tests; never removes instruments.
    void reset_values();

private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

} // namespace fpm::obs

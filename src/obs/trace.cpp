#include "fpm/obs/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace fpm::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

struct TraceEvent {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t arg = 0;
    bool has_arg = false;
};

/// Per-thread event store.  Only the owning thread writes events and
/// advances head (release); flushers read head (acquire) and then the
/// slots below it, which the owner never rewrites — no locks, no data
/// races, TSan-clean.
struct ThreadBuffer {
    std::vector<TraceEvent> events{kThreadTraceCapacity};
    std::atomic<std::uint32_t> head{0};
    std::uint32_t tid = 0;
};

struct TraceState {
    std::mutex mutex;  // path + buffer registration + file writes
    std::string path;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::atomic<std::uint64_t> dropped{0};
    bool atexit_registered = false;
};

TraceState& state() {
    static TraceState instance;
    return instance;
}

ThreadBuffer& local_buffer() {
    // The global list co-owns the buffer so it outlives its thread and
    // stays flushable after the thread exits.
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        TraceState& s = state();
        std::lock_guard lock(s.mutex);
        fresh->tid = static_cast<std::uint32_t>(s.buffers.size() + 1);
        s.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void flush_at_exit() { flush_trace(); }

} // namespace

std::uint64_t now_ns() noexcept {
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    const auto elapsed = clock::now() - epoch;
    // +1 so an enabled span never reads the 0 sentinel on the very
    // first call.
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count()) +
           1;
}

void record_complete_event(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns, std::uint64_t arg,
                           bool has_arg) noexcept {
    ThreadBuffer& buffer = local_buffer();
    const std::uint32_t head = buffer.head.load(std::memory_order_relaxed);
    if (head >= kThreadTraceCapacity) {
        state().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buffer.events[head] = TraceEvent{name, start_ns, dur_ns, arg, has_arg};
    buffer.head.store(head + 1, std::memory_order_release);
}

} // namespace detail

void enable_tracing(std::string path) {
    detail::TraceState& s = detail::state();
    {
        std::lock_guard lock(s.mutex);
        s.path = std::move(path);
        if (!s.atexit_registered) {
            s.atexit_registered = true;
            std::atexit(detail::flush_at_exit);
        }
    }
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() noexcept {
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

bool init_tracing_from_env() {
    if (const char* path = std::getenv("FPMPART_TRACE");
        path != nullptr && *path != '\0') {
        enable_tracing(path);
    }
    return tracing_enabled();
}

std::size_t write_chrome_trace(std::ostream& out) {
    detail::TraceState& s = detail::state();
    std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
    {
        std::lock_guard lock(s.mutex);
        buffers = s.buffers;
    }
    out << "{\"traceEvents\":[";
    std::size_t written = 0;
    char number[64];
    for (const auto& buffer : buffers) {
        const std::uint32_t head =
            std::min<std::uint32_t>(buffer->head.load(std::memory_order_acquire),
                                    kThreadTraceCapacity);
        for (std::uint32_t i = 0; i < head; ++i) {
            const detail::TraceEvent& event = buffer->events[i];
            if (written > 0) {
                out << ",\n";
            }
            // Span names are string literals from the instrumentation
            // sites, so no JSON escaping is needed.
            out << "{\"name\":\"" << event.name
                << "\",\"cat\":\"fpm\",\"ph\":\"X\",\"pid\":1,\"tid\":"
                << buffer->tid;
            std::snprintf(number, sizeof number, "%.3f",
                          static_cast<double>(event.start_ns) / 1e3);
            out << ",\"ts\":" << number;
            std::snprintf(number, sizeof number, "%.3f",
                          static_cast<double>(event.dur_ns) / 1e3);
            out << ",\"dur\":" << number;
            if (event.has_arg) {
                out << ",\"args\":{\"v\":" << event.arg << "}";
            }
            out << "}";
            ++written;
        }
    }
    out << "],\"displayTimeUnit\":\"ms\"}\n";
    return written;
}

std::size_t flush_trace() {
    detail::TraceState& s = detail::state();
    std::string path;
    {
        std::lock_guard lock(s.mutex);
        path = s.path;
    }
    if (path.empty()) {
        return 0;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        return 0;
    }
    return write_chrome_trace(out);
}

std::uint64_t trace_events_dropped() noexcept {
    return detail::state().dropped.load(std::memory_order_relaxed);
}

} // namespace fpm::obs

/// \file matrix.hpp
/// \brief Dense row-major matrix container and non-owning views.
///
/// The application layer partitions one global matrix into rectangles owned
/// by different devices; MatrixView/ConstMatrixView express those rectangles
/// without copying.  Storage is row-major with an explicit leading dimension
/// (stride), mirroring the BLAS convention.
#pragma once

#include <cstddef>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::blas {

template <typename T>
class Matrix;

/// Non-owning mutable view over a rectangular region of a row-major matrix.
template <typename T>
class MatrixView {
public:
    MatrixView(T* data, std::size_t rows, std::size_t cols, std::size_t stride)
        : data_(data), rows_(rows), cols_(cols), stride_(stride) {
        FPM_CHECK(stride >= cols, "stride must be >= cols");
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
    [[nodiscard]] T* data() const noexcept { return data_; }

    T& operator()(std::size_t r, std::size_t c) const {
        return data_[r * stride_ + c];
    }

    /// Sub-rectangle [r0, r0+nr) x [c0, c0+nc); bounds-checked.
    [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                                   std::size_t nc) const {
        FPM_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_, "block out of range");
        return MatrixView(data_ + r0 * stride_ + c0, nr, nc, stride_);
    }

    void fill(T value) const {
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                (*this)(r, c) = value;
            }
        }
    }

private:
    T* data_;
    std::size_t rows_;
    std::size_t cols_;
    std::size_t stride_;
};

/// Non-owning read-only view; see MatrixView.
template <typename T>
class ConstMatrixView {
public:
    ConstMatrixView(const T* data, std::size_t rows, std::size_t cols, std::size_t stride)
        : data_(data), rows_(rows), cols_(cols), stride_(stride) {
        FPM_CHECK(stride >= cols, "stride must be >= cols");
    }

    // Implicit widening from a mutable view.
    ConstMatrixView(MatrixView<T> view)  // NOLINT(google-explicit-constructor)
        : data_(view.data()), rows_(view.rows()), cols_(view.cols()),
          stride_(view.stride()) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }

    const T& operator()(std::size_t r, std::size_t c) const {
        return data_[r * stride_ + c];
    }

    [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0, std::size_t nr,
                                        std::size_t nc) const {
        FPM_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_, "block out of range");
        return ConstMatrixView(data_ + r0 * stride_ + c0, nr, nc, stride_);
    }

private:
    const T* data_;
    std::size_t rows_;
    std::size_t cols_;
    std::size_t stride_;
};

/// Owning dense row-major matrix.
template <typename T>
class Matrix {
public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), storage_(rows * cols, init) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
    [[nodiscard]] T* data() noexcept { return storage_.data(); }
    [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

    T& operator()(std::size_t r, std::size_t c) {
        return storage_[r * cols_ + c];
    }
    const T& operator()(std::size_t r, std::size_t c) const {
        return storage_[r * cols_ + c];
    }

    [[nodiscard]] MatrixView<T> view() {
        return MatrixView<T>(storage_.data(), rows_, cols_, cols_);
    }
    [[nodiscard]] ConstMatrixView<T> view() const {
        return ConstMatrixView<T>(storage_.data(), rows_, cols_, cols_);
    }
    [[nodiscard]] MatrixView<T> block(std::size_t r0, std::size_t c0, std::size_t nr,
                                      std::size_t nc) {
        return view().block(r0, c0, nr, nc);
    }
    [[nodiscard]] ConstMatrixView<T> block(std::size_t r0, std::size_t c0,
                                           std::size_t nr, std::size_t nc) const {
        return view().block(r0, c0, nr, nc);
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> storage_;
};

/// Max absolute element-wise difference between equally-shaped views.
template <typename T>
double max_abs_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
    FPM_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff requires equal shapes");
    double worst = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            const double d = std::abs(static_cast<double>(a(r, c)) -
                                      static_cast<double>(b(r, c)));
            if (d > worst) {
                worst = d;
            }
        }
    }
    return worst;
}

} // namespace fpm::blas

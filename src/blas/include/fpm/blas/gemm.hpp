/// \file gemm.hpp
/// \brief GEMM substrate: C += A * B on row-major views.
///
/// This replaces the vendor BLAS kernels the paper uses (ACML SGEMM on the
/// CPU sockets, CUBLAS SGEMM on the GPUs) with a from-scratch implementation:
///  - gemm_naive: triple-loop reference used as the correctness oracle;
///  - gemm: cache-blocked, packed single-thread kernel (the "optimised
///    kernel" whose speed function the FPM machinery measures);
///  - gemm_multithread: row-partitioned multi-thread driver, modelling one
///    socket executing the kernel "simultaneously on its cores".
///
/// All entry points compute C += alpha * A * B (accumulating, as in the
/// paper's kernel Ci += A(b) x B(b)).
#pragma once

#include <cstddef>

#include "fpm/blas/matrix.hpp"

namespace fpm::blas {

/// Reference implementation; O(m*n*k) triple loop, no blocking.
template <typename T>
void gemm_naive(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                T alpha = T{1});

/// Cache-blocked packed GEMM (single thread).
template <typename T>
void gemm(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
          T alpha = T{1});

/// Multi-threaded GEMM: rows of C are split across `threads` workers, each
/// running the blocked kernel.  `threads == 1` falls back to gemm().
template <typename T>
void gemm_multithread(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                      unsigned threads, T alpha = T{1});

/// Flop count of C(m,n) += A(m,k) * B(k,n).
constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
}

} // namespace fpm::blas

#include "fpm/blas/gemm.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

namespace fpm::blas {

namespace {

// Cache blocking parameters (bytes-agnostic; tuned for ~32 KiB L1 / 512 KiB L2).
constexpr std::size_t kMC = 128;  // rows of A packed per panel
constexpr std::size_t kKC = 256;  // depth of packed panels
constexpr std::size_t kNC = 512;  // cols of B packed per panel
constexpr std::size_t kMR = 4;    // micro-tile rows
constexpr std::size_t kNR = 8;    // micro-tile cols

// Packs a (rows x depth) block of A into row-panels of kMR rows:
// panel-major, within a panel column-major over depth.
template <typename T>
void pack_a(ConstMatrixView<T> a, std::size_t r0, std::size_t k0, std::size_t rows,
            std::size_t depth, T* buffer) {
    for (std::size_t pr = 0; pr < rows; pr += kMR) {
        const std::size_t mr = std::min(kMR, rows - pr);
        for (std::size_t kk = 0; kk < depth; ++kk) {
            for (std::size_t i = 0; i < kMR; ++i) {
                *buffer++ = (i < mr) ? a(r0 + pr + i, k0 + kk) : T{0};
            }
        }
    }
}

// Packs a (depth x cols) block of B into column-panels of kNR columns.
template <typename T>
void pack_b(ConstMatrixView<T> b, std::size_t k0, std::size_t c0, std::size_t depth,
            std::size_t cols, T* buffer) {
    for (std::size_t pc = 0; pc < cols; pc += kNR) {
        const std::size_t nr = std::min(kNR, cols - pc);
        for (std::size_t kk = 0; kk < depth; ++kk) {
            for (std::size_t j = 0; j < kNR; ++j) {
                *buffer++ = (j < nr) ? b(k0 + kk, c0 + pc + j) : T{0};
            }
        }
    }
}

// kMR x kNR register micro-kernel over packed panels; plain loops that the
// compiler auto-vectorises.  Accumulates into a local tile, then adds the
// scaled tile into C (handles fringe via mr/nr bounds).
template <typename T>
void micro_kernel(const T* ap, const T* bp, std::size_t depth, T alpha,
                  MatrixView<T> c, std::size_t r0, std::size_t c0, std::size_t mr,
                  std::size_t nr) {
    T acc[kMR][kNR] = {};
    for (std::size_t kk = 0; kk < depth; ++kk) {
        const T* arow = ap + kk * kMR;
        const T* brow = bp + kk * kNR;
        for (std::size_t i = 0; i < kMR; ++i) {
            const T av = arow[i];
            for (std::size_t j = 0; j < kNR; ++j) {
                acc[i][j] += av * brow[j];
            }
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) {
            c(r0 + i, c0 + j) += alpha * acc[i][j];
        }
    }
}

template <typename T>
void gemm_blocked_range(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                        T alpha, std::size_t row_begin, std::size_t row_end) {
    const std::size_t k_total = a.cols();
    const std::size_t n_total = c.cols();
    if (row_begin >= row_end || k_total == 0 || n_total == 0) {
        return;
    }

    std::vector<T> a_pack(kMC * kKC + kMR * kKC);
    std::vector<T> b_pack(kKC * kNC + kKC * kNR);

    for (std::size_t c0 = 0; c0 < n_total; c0 += kNC) {
        const std::size_t nc = std::min(kNC, n_total - c0);
        for (std::size_t k0 = 0; k0 < k_total; k0 += kKC) {
            const std::size_t kc = std::min(kKC, k_total - k0);
            pack_b(b, k0, c0, kc, nc, b_pack.data());
            for (std::size_t r0 = row_begin; r0 < row_end; r0 += kMC) {
                const std::size_t mc = std::min(kMC, row_end - r0);
                pack_a(a, r0, k0, mc, kc, a_pack.data());
                for (std::size_t pr = 0; pr < mc; pr += kMR) {
                    const std::size_t mr = std::min(kMR, mc - pr);
                    const T* ap = a_pack.data() + (pr / kMR) * (kc * kMR);
                    for (std::size_t pc = 0; pc < nc; pc += kNR) {
                        const std::size_t nr = std::min(kNR, nc - pc);
                        const T* bp = b_pack.data() + (pc / kNR) * (kc * kNR);
                        micro_kernel(ap, bp, kc, alpha, c, r0 + pr, c0 + pc, mr, nr);
                    }
                }
            }
        }
    }
}

template <typename T>
void check_shapes(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
    FPM_CHECK(a.rows() == c.rows(), "gemm: A.rows must equal C.rows");
    FPM_CHECK(b.cols() == c.cols(), "gemm: B.cols must equal C.cols");
    FPM_CHECK(a.cols() == b.rows(), "gemm: A.cols must equal B.rows");
}

} // namespace

template <typename T>
void gemm_naive(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, T alpha) {
    check_shapes(a, b, c);
    for (std::size_t i = 0; i < c.rows(); ++i) {
        for (std::size_t j = 0; j < c.cols(); ++j) {
            T acc{};
            for (std::size_t k = 0; k < a.cols(); ++k) {
                acc += a(i, k) * b(k, j);
            }
            c(i, j) += alpha * acc;
        }
    }
}

template <typename T>
void gemm(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, T alpha) {
    check_shapes(a, b, c);
    gemm_blocked_range(a, b, c, alpha, 0, c.rows());
}

template <typename T>
void gemm_multithread(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                      unsigned threads, T alpha) {
    check_shapes(a, b, c);
    FPM_CHECK(threads >= 1, "gemm_multithread: threads must be >= 1");
    const std::size_t rows = c.rows();
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads, std::max<std::size_t>(rows, 1)));
    if (workers <= 1) {
        gemm_blocked_range(a, b, c, alpha, 0, rows);
        return;
    }

    // Split rows into near-equal contiguous bands, one per worker.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t base = rows / workers;
    const std::size_t extra = rows % workers;
    std::size_t begin = 0;
    for (unsigned w = 0; w < workers; ++w) {
        const std::size_t len = base + (w < extra ? 1 : 0);
        const std::size_t end = begin + len;
        pool.emplace_back([=]() { gemm_blocked_range(a, b, c, alpha, begin, end); });
        begin = end;
    }
    for (auto& t : pool) {
        t.join();
    }
}

template void gemm_naive<float>(ConstMatrixView<float>, ConstMatrixView<float>,
                                MatrixView<float>, float);
template void gemm_naive<double>(ConstMatrixView<double>, ConstMatrixView<double>,
                                 MatrixView<double>, double);
template void gemm<float>(ConstMatrixView<float>, ConstMatrixView<float>,
                          MatrixView<float>, float);
template void gemm<double>(ConstMatrixView<double>, ConstMatrixView<double>,
                           MatrixView<double>, double);
template void gemm_multithread<float>(ConstMatrixView<float>, ConstMatrixView<float>,
                                      MatrixView<float>, unsigned, float);
template void gemm_multithread<double>(ConstMatrixView<double>, ConstMatrixView<double>,
                                       MatrixView<double>, unsigned, double);

} // namespace fpm::blas

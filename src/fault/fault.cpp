#include "fpm/fault/fault.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "fpm/common/error.hpp"
#include "fpm/obs/metrics.hpp"

namespace fpm::fault {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view text) {
    std::uint64_t h = kFnvOffset;
    for (const char ch : text) {
        h ^= static_cast<unsigned char>(ch);
        h *= kFnvPrime;
    }
    return h;
}

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint64_t> g_injected_total{0};

obs::Counter& total_counter() {
    static auto& counter =
        obs::MetricsRegistry::global().counter("fault.injected");
    return counter;
}

} // namespace

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

Point::Point(std::string name)
    : name_(std::move(name)),
      name_hash_(fnv1a(name_)),
      obs_injected_(&obs::MetricsRegistry::global().counter(
          "fault.injected." + name_)) {}

Decision Point::fire_armed() noexcept {
    evaluated_.fetch_add(1, std::memory_order_relaxed);
    const double rate = rate_.load(std::memory_order_relaxed);
    if (rate <= 0.0) {
        return {};
    }
    // Deterministic draw: hash(seed, point, arrival index) -> [0, 1).
    const std::uint64_t n = seq_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h =
        mix64(g_seed.load(std::memory_order_relaxed) ^ name_hash_ ^
              mix64(n));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= rate) {
        return {};
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    g_injected_total.fetch_add(1, std::memory_order_relaxed);
    obs_injected_->add();
    total_counter().add();

    Decision decision;
    decision.action = static_cast<Action>(
        action_.load(std::memory_order_relaxed));
    decision.delay_ms = delay_ms_.load(std::memory_order_relaxed);
    if (decision.action == Action::kDelay && decision.delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(decision.delay_ms));
    }
    return decision;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Owns every Point ever named.  Points are never destroyed, so the
/// references handed out by point() stay valid for the process lifetime.
class Registry {
public:
    static Registry& instance() {
        static Registry registry;
        return registry;
    }

    Point& get_or_create(std::string_view name) {
        std::lock_guard lock(mutex_);
        return get_or_create_locked(name);
    }

    void apply(const FaultPlan& plan) {
        for (const auto& rule : plan.rules) {
            FPM_CHECK(!rule.point.empty(), "fault rule needs a point name");
            FPM_CHECK(rule.rate >= 0.0 && rule.rate <= 1.0,
                      "fault rate must be in [0, 1]: " + rule.point);
        }
        std::lock_guard lock(mutex_);
        detail::g_armed.store(false, std::memory_order_relaxed);
        g_seed.store(plan.seed, std::memory_order_relaxed);
        for (auto& [name, existing] : points_) {
            existing->rate_.store(0.0, std::memory_order_relaxed);
            existing->seq_.store(0, std::memory_order_relaxed);
        }
        bool any = false;
        for (const auto& rule : plan.rules) {
            Point& target = get_or_create_locked(rule.point);
            target.rate_.store(rule.rate, std::memory_order_relaxed);
            target.action_.store(static_cast<std::uint8_t>(rule.action),
                                 std::memory_order_relaxed);
            target.delay_ms_.store(rule.delay_ms, std::memory_order_relaxed);
            target.seq_.store(0, std::memory_order_relaxed);
            any = any || rule.rate > 0.0;
        }
        detail::g_armed.store(any, std::memory_order_relaxed);
    }

    void disarm() {
        std::lock_guard lock(mutex_);
        detail::g_armed.store(false, std::memory_order_relaxed);
        for (auto& [name, existing] : points_) {
            existing->rate_.store(0.0, std::memory_order_relaxed);
        }
    }

    std::vector<PointStats> stats() const {
        std::lock_guard lock(mutex_);
        std::vector<PointStats> out;
        out.reserve(points_.size());
        for (const auto& [name, existing] : points_) {
            out.push_back(PointStats{
                name, existing->rate_.load(std::memory_order_relaxed),
                existing->evaluated(), existing->injected()});
        }
        return out;
    }

private:
    Registry() {
        // First touch of the fault layer arms any environment-provided
        // plan; a malformed spec is reported once and ignored so that
        // noexcept call sites (the reactor) can never throw from here.
        if (const char* spec = std::getenv("FPMPART_FAULTS")) {
            try {
                apply_unlocked_init(FaultPlan::parse(spec));
            } catch (const std::exception& e) {
                std::fprintf(stderr,
                             "fpmpart: ignoring malformed FPMPART_FAULTS: "
                             "%s\n",
                             e.what());
            }
        }
    }

    void apply_unlocked_init(const FaultPlan& plan) {
        // Construction-time only: no other thread can hold a reference
        // yet, so taking mutex_ (as apply() does) is unnecessary — but
        // harmless; reuse the checked path via a scoped unlock dance is
        // not worth it.  Validate + install inline.
        g_seed.store(plan.seed, std::memory_order_relaxed);
        bool any = false;
        for (const auto& rule : plan.rules) {
            FPM_CHECK(!rule.point.empty(), "fault rule needs a point name");
            FPM_CHECK(rule.rate >= 0.0 && rule.rate <= 1.0,
                      "fault rate must be in [0, 1]: " + rule.point);
            Point& target = get_or_create_locked(rule.point);
            target.rate_.store(rule.rate, std::memory_order_relaxed);
            target.action_.store(static_cast<std::uint8_t>(rule.action),
                                 std::memory_order_relaxed);
            target.delay_ms_.store(rule.delay_ms, std::memory_order_relaxed);
            any = any || rule.rate > 0.0;
        }
        detail::g_armed.store(any, std::memory_order_relaxed);
    }

    Point& get_or_create_locked(std::string_view name) {
        const auto it = points_.find(name);
        if (it != points_.end()) {
            return *it->second;
        }
        auto created = std::unique_ptr<Point>(new Point(std::string(name)));
        Point& ref = *created;
        points_.emplace(ref.name(), std::move(created));
        return ref;
    }

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Point>, std::less<>> points_;
};

// ---------------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------------

Point& point(std::string_view name) {
    return Registry::instance().get_or_create(name);
}

void install(const FaultPlan& plan) { Registry::instance().apply(plan); }

void uninstall() { Registry::instance().disarm(); }

std::uint64_t injected_total() noexcept {
    return g_injected_total.load(std::memory_order_relaxed);
}

std::vector<PointStats> stats() { return Registry::instance().stats(); }

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

namespace {

std::uint64_t parse_u64(std::string_view text, const std::string& entry) {
    FPM_CHECK(!text.empty(), "malformed fault entry: " + entry);
    std::uint64_t value = 0;
    for (const char ch : text) {
        FPM_CHECK(ch >= '0' && ch <= '9',
                  "malformed number in fault entry: " + entry);
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    return value;
}

double parse_rate(std::string_view text, const std::string& entry) {
    FPM_CHECK(!text.empty(), "malformed fault entry: " + entry);
    errno = 0;
    char* end = nullptr;
    const std::string copy(text);
    const double value = std::strtod(copy.c_str(), &end);
    FPM_CHECK(end != copy.c_str() && *end == '\0' && errno == 0 &&
                  value >= 0.0 && value <= 1.0,
              "fault rate must be a number in [0, 1]: " + entry);
    return value;
}

} // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string_view raw = spec.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
        if (raw.empty()) {
            continue;  // tolerate empty entries ("a=1,,b=1", trailing ',')
        }
        const std::string entry(raw);
        const std::size_t eq = raw.find('=');
        FPM_CHECK(eq != std::string_view::npos && eq > 0,
                  "fault entry must be point=rate[:action] or seed=N: " +
                      entry);
        const std::string_view key = raw.substr(0, eq);
        const std::string_view value = raw.substr(eq + 1);
        if (key == "seed") {
            plan.seed = parse_u64(value, entry);
            continue;
        }
        Rule rule;
        rule.point = std::string(key);
        const std::size_t colon = value.find(':');
        rule.rate = parse_rate(value.substr(0, colon), entry);
        if (colon != std::string_view::npos) {
            const std::string_view action = value.substr(colon + 1);
            if (action == "fail") {
                rule.action = Action::kFail;
            } else if (action.rfind("delay:", 0) == 0) {
                rule.action = Action::kDelay;
                const std::uint64_t ms = parse_u64(action.substr(6), entry);
                FPM_CHECK(ms <= 60'000,
                          "fault delay must be <= 60000 ms: " + entry);
                rule.delay_ms = static_cast<std::uint32_t>(ms);
            } else {
                throw Error("unknown fault action (want fail or delay:MS): " +
                            entry);
            }
        }
        plan.rules.push_back(std::move(rule));
    }
    return plan;
}

} // namespace fpm::fault

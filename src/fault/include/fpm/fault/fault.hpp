/// \file fault.hpp
/// \brief Deterministic fault injection for the serving stack.
///
/// A fault *point* is a named hook compiled into a production code path
/// (`fault::point("serve.send")`).  When no plan is installed, firing a
/// point costs one relaxed atomic load and a predictable branch — cheap
/// enough to leave in every hot path unconditionally.  When a plan is
/// armed (programmatically via install(), or from the `FPMPART_FAULTS`
/// environment variable at first use), each point draws a deterministic
/// pseudo-random decision per arrival: given the same seed and the same
/// per-point arrival order, a schedule replays exactly — chaos tests are
/// reproducible.
///
/// Spec grammar (FPMPART_FAULTS and FaultPlan::parse):
///
///     spec  := entry (',' entry)*
///     entry := 'seed=' <u64>
///            | <point> '=' <rate>            -- fail with probability rate
///            | <point> '=' <rate> ':fail'
///            | <point> '=' <rate> ':delay:' <ms>
///
/// e.g. `FPMPART_FAULTS=seed=42,serve.send=0.05,serve.compute=0.1:delay:250`.
///
/// Decisions carry an action: kFail (the site simulates the failure it
/// guards — a dropped connection, a failed compute) or kDelay (fire()
/// sleeps for the configured duration *inside* the hook and then reports
/// kDelay; the site proceeds normally, observing only the latency).
/// `Decision::operator bool` is true only for kFail, so every site reads
/// as `if (point.fire()) { <simulate failure> }`.
///
/// The well-known points wired into this repo (see docs/operations.md):
/// serve.accept, serve.recv, serve.send, serve.cache, serve.compute,
/// serve.reload, rt.dispatch, adapt.ingest, adapt.refine,
/// adapt.publish, store.append, store.fsync, store.snapshot.  Points
/// are created on demand, so a plan
/// may also name points that are never reached (they simply stay idle).
/// Every injection increments `fault.injected` and
/// `fault.injected.<point>` in the process-global obs MetricsRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fpm::obs {
class Counter;
} // namespace fpm::obs

namespace fpm::fault {

/// What a fired injection point does.  kNone = the point did not fire.
enum class Action : std::uint8_t { kNone = 0, kFail = 1, kDelay = 2 };

/// Outcome of one Point::fire() evaluation.  A kDelay decision has
/// already slept by the time the caller sees it.
struct Decision {
    Action action = Action::kNone;
    std::uint32_t delay_ms = 0;  ///< configured delay (kDelay only)

    /// True only for kFail: the call site must simulate its failure.
    explicit operator bool() const noexcept { return action == Action::kFail; }
};

namespace detail {
/// True while an installed plan has at least one positive-rate rule.
/// The *only* state fire() touches when injection is off.
inline std::atomic<bool> g_armed{false};
} // namespace detail

/// One named injection point.  Obtained from point(); never destroyed,
/// so sites cache the reference in a function-local static.
class Point {
public:
    /// Evaluates the point once.  Disabled cost: one relaxed load.
    Decision fire() noexcept {
        if (!detail::g_armed.load(std::memory_order_relaxed)) {
            return {};
        }
        return fire_armed();
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// fire() calls made while a plan was armed.
    [[nodiscard]] std::uint64_t evaluated() const noexcept {
        return evaluated_.load(std::memory_order_relaxed);
    }

    /// Decisions that actually fired (kFail or kDelay).
    [[nodiscard]] std::uint64_t injected() const noexcept {
        return injected_.load(std::memory_order_relaxed);
    }

    Point(const Point&) = delete;
    Point& operator=(const Point&) = delete;

private:
    friend class Registry;
    explicit Point(std::string name);

    Decision fire_armed() noexcept;

    std::string name_;
    std::uint64_t name_hash_ = 0;
    obs::Counter* obs_injected_ = nullptr;  ///< fault.injected.<name>
    std::atomic<double> rate_{0.0};
    std::atomic<std::uint8_t> action_{0};
    std::atomic<std::uint32_t> delay_ms_{0};
    std::atomic<std::uint64_t> seq_{0};  ///< per-point arrival counter
    std::atomic<std::uint64_t> evaluated_{0};
    std::atomic<std::uint64_t> injected_{0};
};

/// Resolves (creating on demand) the injection point named `name`.
/// Takes a mutex; call once per site and cache the reference:
///
///     static auto& p = fault::point("serve.send");
///     if (p.fire()) { /* simulate a send failure */ }
[[nodiscard]] Point& point(std::string_view name);

/// A complete injection configuration: per-point rules plus the seed
/// that makes the schedule deterministic.
struct FaultPlan {
    struct Rule {
        std::string point;           ///< injection-point name
        double rate = 0.0;           ///< fire probability in [0, 1]
        Action action = Action::kFail;
        std::uint32_t delay_ms = 0;  ///< kDelay only
    };

    std::vector<Rule> rules;
    std::uint64_t seed = 0;

    /// Parses the FPMPART_FAULTS grammar (see file comment); throws
    /// fpm::Error with the offending entry on malformed specs.
    [[nodiscard]] static FaultPlan parse(std::string_view spec);
};

/// Installs `plan`, replacing any previous one: every existing point is
/// disarmed first, then the plan's rules are applied and per-point
/// arrival counters reset to zero (same plan + same arrival order =
/// same schedule).  Throws fpm::Error on invalid rules (rate outside
/// [0, 1], empty point name).
void install(const FaultPlan& plan);

/// Disarms every point.  Counters (evaluated/injected) are preserved.
void uninstall();

/// True while an installed plan has at least one positive-rate rule.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_armed.load(std::memory_order_relaxed);
}

/// Total decisions fired across all points since process start (the
/// value behind the `fault.injected` obs counter and the HEALTH reply).
[[nodiscard]] std::uint64_t injected_total() noexcept;

/// Point-by-point counters, in name order.
struct PointStats {
    std::string name;
    double rate = 0.0;  ///< currently configured probability
    std::uint64_t evaluated = 0;
    std::uint64_t injected = 0;
};
[[nodiscard]] std::vector<PointStats> stats();

} // namespace fpm::fault

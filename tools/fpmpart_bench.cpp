// fpmpart_bench — drive a partition server with the fpm::loadgen
// subsystem and emit a machine-readable BENCH_loadgen.json report.
//
// Two ways to target a server:
//
//   * spawn:  `--models NAME=FILE ...` starts an in-process reactor pool
//     (same engine/server stack as fpmpart_serve, honouring --reactors/
//     --threads/--cache/--cache-shards) on an ephemeral loopback port,
//     benches it, and tears it down.  This is what the perf gate uses —
//     one command, no orchestration.
//   * attach: `--port P[,HOST:P...]` (with optional `--host` for bare
//     ports) benches an already running server.  More than one entry
//     makes the list a failover chain: every client walks it on typed
//     transport errors, so a primary/replica pair can be benched
//     through a mid-run primary kill (endpoint advances are reported as
//     `failovers`).  Unless `--sets` narrows the targets, the model
//     sets are discovered with a MODELS query.
//
// The workload (verb mix, problem sizes, arrival process) is fully
// seeded: two invocations with the same flags offer byte-identical
// request streams, and the report embeds a stream fingerprint proving
// it.  `--mode open` measures latency from each request's *scheduled*
// arrival and counts queue-full arrivals as drops, so coordinated
// omission shows up in the numbers instead of hiding in them — see
// docs/benchmarking.md for the methodology and the full JSON schema.
//
// With `--baseline FILE` the run additionally compares itself against a
// checked-in report (ci/perf_gate.sh wires this up): achieved rate may
// not fall more than `--tolerance` below the baseline, latency
// (mean/p50/p99) may not rise more than `--tolerance` above it, and
// errors/drops may not appear where the baseline had none.  Exit code 3
// means "measurably worse than baseline".
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fpm/loadgen/runner.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/server.hpp"
#include "tool_args.hpp"

namespace {

using fpm::loadgen::Report;

bool parse_mix(const std::string& text, fpm::loadgen::WorkloadSpec* spec) {
    std::vector<double> weights;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ':')) {
        try {
            weights.push_back(fpmtool::parse_number(part, "--mix"));
        } catch (const fpm::Error&) {
            return false;
        }
    }
    if (weights.size() != 4) {
        return false;
    }
    spec->partition_weight = weights[0];
    spec->stats_weight = weights[1];
    spec->health_weight = weights[2];
    spec->feedback_weight = weights[3];
    return true;
}

/// One gate check; prints its own PASS/FAIL line.
bool check(const char* what, bool ok, double fresh, double base) {
    std::printf("  %s  %-28s fresh %.6g vs baseline %.6g\n",
                ok ? "PASS" : "FAIL", what, fresh, base);
    return ok;
}

/// Compares a fresh report against the baseline; returns the number of
/// failed checks.  Rates may fall at most `tol` below the baseline,
/// latencies rise at most `tol` above it (tol is a fraction, 0.25 = 25%).
int compare_reports(const Report& fresh, const Report& base, double tol) {
    const auto ratio = [](std::uint64_t part, std::uint64_t whole) {
        return whole == 0 ? 0.0
                          : static_cast<double>(part) /
                                static_cast<double>(whole);
    };
    int failures = 0;
    failures += !check("achieved_rps",
                       fresh.achieved_rps >= base.achieved_rps * (1.0 - tol),
                       fresh.achieved_rps, base.achieved_rps);
    failures += !check("latency.mean_us",
                       fresh.latency.mean_us <=
                           base.latency.mean_us * (1.0 + tol),
                       fresh.latency.mean_us, base.latency.mean_us);
    failures += !check("latency.p50_us",
                       fresh.latency.p50_us <=
                           base.latency.p50_us * (1.0 + tol),
                       fresh.latency.p50_us, base.latency.p50_us);
    failures += !check("latency.p99_us",
                       fresh.latency.p99_us <=
                           base.latency.p99_us * (1.0 + tol),
                       fresh.latency.p99_us, base.latency.p99_us);
    failures += !check("error_ratio",
                       ratio(fresh.errors, fresh.sent) <=
                           ratio(base.errors, base.sent) + tol,
                       ratio(fresh.errors, fresh.sent),
                       ratio(base.errors, base.sent));
    failures += !check("drop_ratio",
                       ratio(fresh.dropped, fresh.scheduled) <=
                           ratio(base.dropped, base.scheduled) + tol,
                       ratio(fresh.dropped, fresh.scheduled),
                       ratio(base.dropped, base.scheduled));
    return failures;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    FPM_CHECK(in.good(), "cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::vector<std::string> model_specs;
        std::vector<std::string> sets;
        std::string host = "127.0.0.1";
        std::string mode = "closed";
        std::string arrival = "poisson";
        std::string mix = "1:0:0:0";
        std::string algorithm = "fpm";
        std::string out_path = "BENCH_loadgen.json";
        std::string baseline_path;
        double tolerance = 0.5;
        loadgen::WorkloadSpec spec;
        loadgen::LoadConfig load;
        serve::ServeConfig server_config;
        serve::RequestEngine::Options engine_options;

        fpmtool::FlagTable flags("fpmpart_bench");
        std::string port_spec;
        flags.bind_list("--models", "NAME=FILE", &model_specs)
            .bind("--host", "ADDR", &host)
            .bind("--port", "P[,HOST:P...]", &port_spec)
            .bind_list("--sets", "NAME", &sets)
            .bind("--mode", "closed|open", &mode)
            .bind("--arrival", "poisson|uniform", &arrival)
            .bind("--rps", "X", &load.target_rps, 0.001)
            .bind("--duration", "SECONDS", &load.duration_seconds, 0.0)
            .bind("--requests", "N", &load.requests, 0)
            .bind("--connections", "N", &load.connections, 1, 4096)
            .bind("--think", "SECONDS", &load.think_time_seconds, 0.0)
            .bind("--outstanding", "N", &load.max_outstanding, 1)
            .bind("--seed", "N", &spec.seed, 1)
            .bind("--mix", "P:S:H:F", &mix)
            .bind("--n-min", "N", &spec.n_min, 1)
            .bind("--n-max", "N", &spec.n_max, 1)
            .bind("--algo", "fpm|cpm|even", &algorithm)
            .bind("--layout", "on|off", &spec.with_layout)
            .bind("--reactors", "N", &server_config.num_reactors, 1, 1024)
            .bind("--threads", "N", &engine_options.workers, 1, 4096)
            .bind("--cache", "N", &engine_options.cache_capacity, 1)
            .bind("--cache-shards", "N", &engine_options.cache_shards, 1, 4096)
            .bind("--out", "FILE", &out_path)
            .bind("--baseline", "FILE", &baseline_path)
            .bind("--tolerance", "X", &tolerance, 0.0)
            .trace();
        if (!flags.parse(argc, argv)) {
            return 2;
        }

        if (mode != "closed" && mode != "open") {
            std::fprintf(stderr, "error: --mode expects closed|open\n%s",
                         flags.usage().c_str());
            return 2;
        }
        load.mode = mode == "open" ? loadgen::Mode::kOpen
                                   : loadgen::Mode::kClosed;
        if (arrival != "poisson" && arrival != "uniform") {
            std::fprintf(stderr, "error: --arrival expects poisson|uniform\n%s",
                         flags.usage().c_str());
            return 2;
        }
        load.arrival = arrival == "poisson" ? loadgen::Arrival::kPoisson
                                            : loadgen::Arrival::kUniform;
        if (!parse_mix(mix, &spec)) {
            std::fprintf(stderr,
                         "error: --mix expects four ':'-separated weights "
                         "(PARTITION:STATS:HEALTH:FEEDBACK), got '%s'\n%s",
                         mix.c_str(), flags.usage().c_str());
            return 2;
        }
        const auto algo = part::parse_algorithm(algorithm);
        if (!algo) {
            std::fprintf(stderr, "error: --algo expects fpm|cpm|even\n%s",
                         flags.usage().c_str());
            return 2;
        }
        spec.algorithm = *algo;
        if (model_specs.empty() && port_spec.empty()) {
            std::fprintf(stderr,
                         "error: nothing to bench — give --models to spawn "
                         "a server or --port to attach to one\n%s",
                         flags.usage().c_str());
            return 2;
        }
        // Attach mode takes a comma-separated failover list (bare port
        // or HOST:PORT per entry); spawn mode takes one bare port.
        std::vector<serve::Endpoint> endpoints;
        if (!port_spec.empty()) {
            try {
                endpoints = serve::parse_endpoint_list(port_spec, host);
            } catch (const Error& e) {
                std::fprintf(stderr, "error: --port: %s\n%s", e.what(),
                             flags.usage().c_str());
                return 2;
            }
            if (!model_specs.empty()) {
                if (endpoints.size() != 1 || endpoints.front().host != host) {
                    std::fprintf(stderr,
                                 "error: --port with --models (spawn mode) "
                                 "expects one bare port, got '%s'\n%s",
                                 port_spec.c_str(), flags.usage().c_str());
                    return 2;
                }
                server_config.port = endpoints.front().port;
            }
        }

        // Spawn mode: the same registry -> engine -> reactor-pool stack
        // fpmpart_serve runs, on an ephemeral loopback port.
        serve::ModelRegistry registry;
        std::unique_ptr<serve::RequestEngine> engine;
        std::unique_ptr<serve::SocketServer> server;
        if (!model_specs.empty()) {
            for (const auto& model_spec : model_specs) {
                const auto eq = model_spec.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 == model_spec.size()) {
                    std::fprintf(stderr,
                                 "--models expects NAME=FILE, got '%s'\n%s",
                                 model_spec.c_str(), flags.usage().c_str());
                    return 2;
                }
                const std::string name = model_spec.substr(0, eq);
                registry.load_csv(name, model_spec.substr(eq + 1));
                if (sets.empty() || !flags.seen("--sets")) {
                    sets.push_back(name);
                }
            }
            engine = std::make_unique<serve::RequestEngine>(registry,
                                                            engine_options);
            server = std::make_unique<serve::SocketServer>(*engine,
                                                           server_config);
            server->start();
            load.host = "127.0.0.1";
            load.port = server->port();
            std::printf("spawned server on 127.0.0.1:%u (%zu reactor(s), "
                        "%u worker(s))\n",
                        load.port, server->num_reactors(),
                        engine_options.workers);
        } else {
            load.endpoints = endpoints;
            load.host = endpoints.front().host;
            load.port = endpoints.front().port;
            if (sets.empty()) {
                // Discover the target's model sets instead of guessing;
                // the probe itself fails over across the list.
                serve::ServeClient probe(endpoints, load.serve);
                serve::Request models;
                models.kind = serve::Request::Kind::kModels;
                for (const auto& info : probe.call(models).sets) {
                    sets.push_back(info.name);
                }
            }
            std::string attached;
            for (const auto& endpoint : endpoints) {
                attached += attached.empty() ? "" : ", ";
                attached += endpoint.to_string();
            }
            std::printf("attached to %s\n", attached.c_str());
        }
        spec.model_sets = sets;

        const Report report = loadgen::run(spec, load);
        if (server) {
            server->stop();
        }

        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        FPM_CHECK(out.good(), "cannot write " + out_path);
        out << report.to_json();
        out.close();

        std::printf(
            "%s loop (%s): %llu scheduled = %llu sent + %llu dropped; "
            "%llu completed (%llu error(s), %llu degraded, "
            "%llu failover(s)) in %.3fs\n",
            report.mode.c_str(),
            report.arrival.empty() ? "n/a" : report.arrival.c_str(),
            static_cast<unsigned long long>(report.scheduled),
            static_cast<unsigned long long>(report.sent),
            static_cast<unsigned long long>(report.dropped),
            static_cast<unsigned long long>(report.completed),
            static_cast<unsigned long long>(report.errors),
            static_cast<unsigned long long>(report.degraded),
            static_cast<unsigned long long>(report.failovers),
            report.duration_seconds);
        std::printf("achieved %.1f req/s; latency us: p50 %.1f  p95 %.1f  "
                    "p99 %.1f  p99.9 %.1f  max %.1f\n",
                    report.achieved_rps, report.latency.p50_us,
                    report.latency.p95_us, report.latency.p99_us,
                    report.latency.p999_us, report.latency.max_us);
        std::printf("stream fingerprint %016llx; report written to %s\n",
                    static_cast<unsigned long long>(report.stream_fingerprint),
                    out_path.c_str());

        if (!baseline_path.empty()) {
            const Report base = Report::from_json(read_file(baseline_path));
            std::printf("gate: comparing against %s (tolerance %.3g)\n",
                        baseline_path.c_str(), tolerance);
            const int failures = compare_reports(report, base, tolerance);
            if (failures > 0) {
                std::printf("gate: FAIL — %d check(s) regressed beyond "
                            "tolerance\n",
                            failures);
                return 3;
            }
            std::printf("gate: PASS\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

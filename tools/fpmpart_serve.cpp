// fpmpart_serve — run the partition service over TCP.
//
// Loads one or more model CSVs (built by fpmpart_model) into the
// fpm::serve model registry and answers the line protocol on a loopback
// TCP port with a single-threaded epoll reactor (pipelined requests,
// admission control, idle eviction):
//
//   PING                                    liveness probe
//   LOAD <name> <path>                      hot-(re)load a model set
//   PARTITION <model> <n> <algo> [nolayout] partition an n x n workload
//   FEEDBACK <model> <dev> <size> <secs>    report a measured execution
//   MODELS / STATS                          registry, cache and reactor counters
//   HEALTH                                  readiness + fault/degraded counters
//   QUIT                                    close this connection
//
// With `--adapt on` the server folds FEEDBACK samples into the served
// models online (fpm::adapt): reliable evidence refines the speed
// functions and sustained drift hot-publishes a new model version (see
// docs/adaptation.md).  Without it FEEDBACK answers
// `ERR feedback not enabled`.
//
// Fault drills: set FPMPART_FAULTS (see docs/operations.md) before
// launch to arm deterministic injection points; the armed rule count is
// printed on startup.
//
// Usage:
//   fpmpart_serve --models NAME=FILE [--models NAME=FILE ...]
//                 [--port P] [--bind ADDR] [--threads N] [--cache N]
//                 [--max-conns N] [--idle-timeout SECONDS]
//                 [--adapt on|off] [--adapt-min-samples N]
//                 [--adapt-max-samples N] [--adapt-rel-err X]
//                 [--adapt-drift X] [--adapt-cusum X]
//                 [--trace FILE]
//
// Port 0 (the default) picks an ephemeral port; the bound port is
// printed on startup.  The process serves until stdin reaches EOF
// (Ctrl-D) so it composes with shells, tests and process supervisors;
// shutdown drains in-flight requests gracefully.
#include <cstdio>
#include <string>

#include <memory>

#include "fpm/adapt/engine.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/serve/server.hpp"
#include "tool_args.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fpmpart_serve --models NAME=FILE [--models NAME=FILE ...]\n"
    "                     [--port P] [--bind ADDR] [--threads N] [--cache N]\n"
    "                     [--max-conns N] [--idle-timeout SECONDS]\n"
    "                     [--adapt on|off] [--adapt-min-samples N]\n"
    "                     [--adapt-max-samples N] [--adapt-rel-err X]\n"
    "                     [--adapt-drift X] [--adapt-cusum X]\n"
    "                     [--trace FILE]\n";

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::vector<std::string> model_specs;
        long long threads = 4;
        long long cache_capacity = 1024;
        bool adapt_enabled = false;
        adapt::AdaptConfig adapt_config;
        serve::ServeConfig config;
        try {
            const fpmtool::ArgParser args(
                argc, argv,
                {"--port", "--bind", "--threads", "--cache", "--max-conns",
                 "--idle-timeout", "--adapt", "--adapt-min-samples",
                 "--adapt-max-samples", "--adapt-rel-err", "--adapt-drift",
                 "--adapt-cusum", "--trace"},
                {"--models"});
            model_specs = args.values("--models");
            fpmtool::init_tracing(args);
            const long long port = args.int_value("--port", 0);
            FPM_CHECK(port >= 0 && port <= 65535, "--port out of range");
            config.port = static_cast<std::uint16_t>(port);
            config.bind_address = args.value("--bind", "127.0.0.1");
            threads = args.int_value("--threads", 4);
            cache_capacity = args.int_value("--cache", 1024);
            const long long max_conns = args.int_value(
                "--max-conns", static_cast<long long>(config.max_connections));
            FPM_CHECK(max_conns >= 1, "--max-conns must be positive");
            config.max_connections = static_cast<std::size_t>(max_conns);
            config.idle_timeout =
                args.double_value("--idle-timeout", config.idle_timeout);
            FPM_CHECK(threads >= 1, "--threads must be positive");
            FPM_CHECK(cache_capacity >= 1, "--cache must be positive");
            const std::string adapt = args.value("--adapt", "off");
            FPM_CHECK(adapt == "on" || adapt == "off",
                      "--adapt expects on|off, got '" + adapt + "'");
            adapt_enabled = adapt == "on";
            adapt_config.min_samples = static_cast<std::uint64_t>(
                args.int_value("--adapt-min-samples",
                               static_cast<long long>(
                                   adapt_config.min_samples)));
            adapt_config.max_samples = static_cast<std::uint64_t>(
                args.int_value("--adapt-max-samples",
                               static_cast<long long>(
                                   adapt_config.max_samples)));
            adapt_config.target_relative_error = args.double_value(
                "--adapt-rel-err", adapt_config.target_relative_error);
            adapt_config.drift_threshold =
                args.double_value("--adapt-drift",
                                  adapt_config.drift_threshold);
            adapt_config.cusum_limit =
                args.double_value("--adapt-cusum", adapt_config.cusum_limit);
            // AdaptEngine revalidates; this just fails before binding.
            FPM_CHECK(adapt_config.min_samples >= 1,
                      "--adapt-min-samples must be positive");
            FPM_CHECK(adapt_config.max_samples >= adapt_config.min_samples,
                      "--adapt-max-samples must be >= --adapt-min-samples");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
            return 2;
        }
        if (model_specs.empty()) {
            std::fprintf(stderr, "%s", kUsage);
            return 2;
        }

        serve::ModelRegistry registry;
        for (const auto& spec : model_specs) {
            const auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
                std::fprintf(stderr, "--models expects NAME=FILE, got '%s'\n%s",
                             spec.c_str(), kUsage);
                return 2;
            }
            const auto set =
                registry.load_csv(spec.substr(0, eq), spec.substr(eq + 1));
            std::printf("loaded model set '%s': %zu model(s), generation %llu\n",
                        set->name.c_str(), set->models.size(),
                        static_cast<unsigned long long>(set->generation));
        }

        // stats() touches the fault registry, which installs any
        // FPMPART_FAULTS plan on first use; enabled() alone would not.
        const auto fault_points = fault::stats();
        if (fault::enabled()) {
            std::size_t armed = 0;
            for (const auto& point : fault_points) {
                armed += point.rate > 0.0 ? 1 : 0;
            }
            std::printf("fault injection armed: %zu rule(s) from "
                        "FPMPART_FAULTS\n",
                        armed);
        }

        serve::RequestEngine::Options engine_options;
        engine_options.workers = static_cast<unsigned>(threads);
        engine_options.cache_capacity =
            static_cast<std::size_t>(cache_capacity);
        serve::RequestEngine engine(registry, engine_options);

        std::unique_ptr<adapt::AdaptEngine> adapter;
        if (adapt_enabled) {
            adapter = std::make_unique<adapt::AdaptEngine>(engine,
                                                           adapt_config);
            std::printf("online adaptation enabled: min %llu / max %llu "
                        "samples, rel-err %.3g, drift %.3g, cusum %.3g\n",
                        static_cast<unsigned long long>(
                            adapt_config.min_samples),
                        static_cast<unsigned long long>(
                            adapt_config.max_samples),
                        adapt_config.target_relative_error,
                        adapt_config.drift_threshold,
                        adapt_config.cusum_limit);
        }

        serve::SocketServer server(engine, config);
        server.start();
        std::printf("fpmpart_serve listening on %s:%u (%lld worker(s), "
                    "cache %lld, max %zu conn(s), idle timeout %.3gs); "
                    "Ctrl-D to stop\n",
                    config.bind_address.c_str(), server.port(), threads,
                    cache_capacity, config.max_connections,
                    config.idle_timeout);
        std::fflush(stdout);

        // Serve until stdin closes; stop() drains in-flight work.
        for (int ch = std::getchar(); ch != EOF; ch = std::getchar()) {
        }
        server.stop();

        const auto stats = engine.stats();
        std::printf("served %zu connection(s), %llu request(s) "
                    "(%llu computed, %llu coalesced, %llu cache hit(s))\n",
                    server.connections_accepted(),
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.computed),
                    static_cast<unsigned long long>(stats.coalesced),
                    static_cast<unsigned long long>(stats.cache.hits));
        if (adapter) {
            const auto adapt_stats = adapter->stats();
            std::printf("adaptation: %llu sample(s), %llu reliable "
                        "window(s), %llu republish(es), model version %llu\n",
                        static_cast<unsigned long long>(adapt_stats.samples),
                        static_cast<unsigned long long>(adapt_stats.reliable),
                        static_cast<unsigned long long>(
                            adapt_stats.republished),
                        static_cast<unsigned long long>(
                            adapt_stats.model_version));
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

// fpmpart_serve — run the partition service over TCP.
//
// Loads one or more model CSVs (built by fpmpart_model) into the
// fpm::serve model registry and answers the line protocol on a loopback
// TCP port with a pool of epoll reactors (pipelined requests, admission
// control, idle eviction; `--reactors N` > 1 binds N SO_REUSEPORT
// listeners and lets the kernel spread connections across them):
//
//   PING                                    liveness probe
//   LOAD <name> <path>                      hot-(re)load a model set
//   PARTITION <model> <n> <algo> [nolayout] partition an n x n workload
//   FEEDBACK <model> <dev> <size> <secs>    report a measured execution
//   MODELS / STATS                          registry, cache and reactor counters
//   HEALTH                                  readiness + fault/degraded counters
//   QUIT                                    close this connection
//
// With `--adapt on` the server folds FEEDBACK samples into the served
// models online (fpm::adapt): reliable evidence refines the speed
// functions and sustained drift hot-publishes a new model version (see
// docs/adaptation.md).  Without it FEEDBACK answers
// `ERR feedback_disabled`.
//
// With `--store DIR` every published model generation (operator LOAD,
// adapt republish) is logged to a durable WAL + snapshot store
// (fpm::store) before it is acknowledged, and on startup the registry is
// recovered from that directory — after a crash the server serves the
// exact pre-crash generations, bit for bit (see docs/operations.md).
// `--models` sets already present in the recovered state are skipped.
//
// Replication (fpm::repl, docs/replication.md): `--repl-listen P` makes
// this server a primary that ships its WAL to connecting replicas
// (requires --store); `--replica-of HOST:PORT` makes it a hot-standby
// replica instead — it pulls the primary's publish stream, applies it
// through the same registry machinery, answers PARTITION/STATS/HEALTH/
// MODELS and rejects writes (LOAD, FEEDBACK) with `ERR read_only`.
// A replica may itself carry `--store` for local durability.
//
// Fault drills: set FPMPART_FAULTS (see docs/operations.md) before
// launch to arm deterministic injection points; the armed rule count is
// printed on startup.
//
// Flags are declared once in the FlagTable below (which also generates
// the usage text); most bind straight onto ServeConfig/AdaptConfig
// fields, so defaults live in the config structs, not here.
//
// Port 0 (the default) picks an ephemeral port; the bound port is
// printed on startup.  The process serves until stdin reaches EOF
// (Ctrl-D) so it composes with shells, tests and process supervisors;
// shutdown drains in-flight requests gracefully.
#include <cstdio>
#include <memory>
#include <string>

#include "fpm/adapt/engine.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/repl/replication_log.hpp"
#include "fpm/repl/replication_server.hpp"
#include "fpm/repl/replicator.hpp"
#include "fpm/serve/server.hpp"
#include "fpm/store/model_store.hpp"
#include "tool_args.hpp"

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::vector<std::string> model_specs;
        bool adapt_enabled = false;
        adapt::AdaptConfig adapt_config;
        serve::ServeConfig config;
        serve::RequestEngine::Options engine_options;
        std::string replica_of;
        std::uint16_t repl_listen = 0;

        fpmtool::FlagTable flags("fpmpart_serve");
        flags.bind_list("--models", "NAME=FILE", &model_specs)
            .bind("--port", "P", &config.port, 0, 65535)
            .bind("--bind", "ADDR", &config.bind_address)
            .bind("--reactors", "N", &config.num_reactors, 1, 1024)
            .bind("--threads", "N", &engine_options.workers, 1, 4096)
            .bind("--cache", "N", &engine_options.cache_capacity, 1)
            .bind("--cache-shards", "N", &engine_options.cache_shards, 1, 4096)
            .bind("--max-conns", "N", &config.max_connections, 1)
            .bind("--idle-timeout", "SECONDS", &config.idle_timeout, 0.0)
            .bind("--adapt", "on|off", &adapt_enabled)
            .bind("--adapt-min-samples", "N", &adapt_config.min_samples, 1)
            .bind("--adapt-max-samples", "N", &adapt_config.max_samples, 1)
            .bind("--adapt-rel-err", "X",
                  &adapt_config.target_relative_error, 0.0)
            .bind("--adapt-drift", "X", &adapt_config.drift_threshold, 0.0)
            .bind("--adapt-cusum", "X", &adapt_config.cusum_limit, 0.0)
            .bind("--store", "DIR", &config.store_dir)
            .bind("--store-fsync", "always|never", &config.fsync_policy)
            .bind("--store-snapshot-every", "N", &config.snapshot_every, 0)
            .bind("--replica-of", "HOST:PORT", &replica_of)
            .bind("--repl-listen", "P", &repl_listen, 0, 65535)
            .trace();
        if (!flags.parse(argc, argv)) {
            return 2;
        }
        // A server needs *some* source of models: CSVs, a recoverable
        // store, or a primary to replicate from.
        if (model_specs.empty() && config.store_dir.empty() &&
            replica_of.empty()) {
            std::fprintf(stderr,
                         "error: need --models, --store or --replica-of\n%s",
                         flags.usage().c_str());
            return 2;
        }
        if (!replica_of.empty() && adapt_enabled) {
            // A replica's registry belongs to the replication stream;
            // locally-published adapt generations would collide with it.
            std::fprintf(stderr,
                         "error: --adapt cannot be combined with "
                         "--replica-of (replicas are read-only)\n%s",
                         flags.usage().c_str());
            return 2;
        }
        if (flags.seen("--repl-listen") && config.store_dir.empty()) {
            std::fprintf(stderr,
                         "error: --repl-listen requires --store "
                         "(replication ships the WAL)\n%s",
                         flags.usage().c_str());
            return 2;
        }
        // Validate --replica-of up front so a typo exits 2 with usage
        // like every other bad flag, before any server state exists.
        serve::Endpoint replica_source;
        if (!replica_of.empty()) {
            std::vector<serve::Endpoint> sources;
            try {
                sources = serve::parse_endpoint_list(replica_of, "127.0.0.1");
            } catch (const Error& e) {
                std::fprintf(stderr, "error: --replica-of: %s\n%s",
                             e.what(), flags.usage().c_str());
                return 2;
            }
            if (sources.size() != 1) {
                std::fprintf(stderr,
                             "error: --replica-of expects exactly one "
                             "HOST:PORT, got '%s'\n%s",
                             replica_of.c_str(), flags.usage().c_str());
                return 2;
            }
            replica_source = sources.front();
        }
        // AdaptEngine revalidates; this just fails before binding.
        if (adapt_config.max_samples < adapt_config.min_samples) {
            std::fprintf(stderr,
                         "error: --adapt-max-samples must be >= "
                         "--adapt-min-samples\n%s",
                         flags.usage().c_str());
            return 2;
        }
        // Validate even without --store: a typo'd policy must not be
        // silently ignored just because durability is off today.
        store::StoreOptions store_options;
        try {
            store_options.fsync_policy =
                store::parse_fsync_policy(config.fsync_policy);
        } catch (const Error& e) {
            std::fprintf(stderr, "error: --store-fsync: %s\n%s", e.what(),
                         flags.usage().c_str());
            return 2;
        }
        store_options.snapshot_every = config.snapshot_every;

        serve::ModelRegistry registry;

        // Durability first: recover what a previous process published,
        // then attach so every publish below (including the --models
        // loads) is write-ahead logged before it commits.
        std::unique_ptr<store::ModelStore> model_store;
        if (!config.store_dir.empty()) {
            model_store = std::make_unique<store::ModelStore>(config.store_dir,
                                                              store_options);
            const auto recovered = model_store->recover(registry);
            std::printf("store '%s': recovered generation %llu "
                        "(%zu set(s), snapshot gen %llu + %llu WAL record(s), "
                        "%llu torn byte(s) truncated), fsync %s, "
                        "snapshot every %llu\n",
                        config.store_dir.c_str(),
                        static_cast<unsigned long long>(
                            recovered.recovered_generation),
                        recovered.sets,
                        static_cast<unsigned long long>(
                            recovered.snapshot_generation),
                        static_cast<unsigned long long>(recovered.wal_records),
                        static_cast<unsigned long long>(
                            recovered.truncated_bytes),
                        std::string(to_string(store_options.fsync_policy))
                            .c_str(),
                        static_cast<unsigned long long>(
                            store_options.snapshot_every));
            model_store->attach(registry);
        }

        for (const auto& spec : model_specs) {
            const auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
                std::fprintf(stderr, "--models expects NAME=FILE, got '%s'\n%s",
                             spec.c_str(), flags.usage().c_str());
                return 2;
            }
            const std::string name = spec.substr(0, eq);
            if (registry.find(name) != nullptr) {
                // The recovered state is newer than the CSV on disk (it
                // may hold adapt refinements); keep it.
                std::printf("model set '%s' recovered from the store; "
                            "skipping %s\n",
                            name.c_str(), spec.substr(eq + 1).c_str());
                continue;
            }
            const auto set = registry.load_csv(name, spec.substr(eq + 1));
            std::printf("loaded model set '%s': %zu model(s), generation %llu\n",
                        set->name.c_str(), set->models.size(),
                        static_cast<unsigned long long>(set->generation));
        }

        // stats() touches the fault registry, which installs any
        // FPMPART_FAULTS plan on first use; enabled() alone would not.
        const auto fault_points = fault::stats();
        if (fault::enabled()) {
            std::size_t armed = 0;
            for (const auto& point : fault_points) {
                armed += point.rate > 0.0 ? 1 : 0;
            }
            std::printf("fault injection armed: %zu rule(s) from "
                        "FPMPART_FAULTS\n",
                        armed);
        }

        serve::RequestEngine engine(registry, engine_options);

        std::unique_ptr<adapt::AdaptEngine> adapter;
        if (adapt_enabled) {
            adapter = std::make_unique<adapt::AdaptEngine>(engine,
                                                           adapt_config);
            std::printf("online adaptation enabled: min %llu / max %llu "
                        "samples, rel-err %.3g, drift %.3g, cusum %.3g\n",
                        static_cast<unsigned long long>(
                            adapt_config.min_samples),
                        static_cast<unsigned long long>(
                            adapt_config.max_samples),
                        adapt_config.target_relative_error,
                        adapt_config.drift_threshold,
                        adapt_config.cusum_limit);
        }

        // Replication wiring (docs/replication.md).  The log/server pair
        // makes this process a primary; a Replicator makes it a replica.
        std::unique_ptr<repl::ReplicationLog> repl_log;
        std::unique_ptr<repl::ReplicationServer> repl_server;
        std::unique_ptr<repl::Replicator> replicator;
        if (flags.seen("--repl-listen")) {
            repl_log = std::make_unique<repl::ReplicationLog>(*model_store);
            repl::ReplServerConfig repl_config;
            repl_config.bind_address = config.bind_address;
            repl_config.port = repl_listen;
            repl_server = std::make_unique<repl::ReplicationServer>(
                *repl_log, repl_config);
            std::printf("replication primary: shipping WAL on %s:%u\n",
                        repl_config.bind_address.c_str(),
                        repl_server->port());
        }
        if (!replica_of.empty()) {
            engine.set_read_only(true);
            repl::ReplicatorConfig repl_config;
            repl_config.source = replica_source;
            repl_config.transport = config;
            replicator = std::make_unique<repl::Replicator>(
                engine, model_store.get(), repl_config);
            replicator->start();
            std::printf("replica of %s: serving read-only (writes answer "
                        "ERR read_only)\n",
                        repl_config.source.to_string().c_str());
        }

        serve::SocketServer server(engine, config);
        server.start();
        std::printf("fpmpart_serve listening on %s:%u (%zu reactor(s), "
                    "%u worker(s), cache %zu in %zu shard(s), max %zu "
                    "conn(s), idle timeout %.3gs); Ctrl-D to stop\n",
                    config.bind_address.c_str(), server.port(),
                    server.num_reactors(), engine_options.workers,
                    engine_options.cache_capacity,
                    engine.stats().cache_shards, config.max_connections,
                    config.idle_timeout);
        std::fflush(stdout);

        // Serve until stdin closes; stop() drains in-flight work, then
        // the store takes its final compacted snapshot (no publishes can
        // arrive once the server and adapter are quiet).
        for (int ch = std::getchar(); ch != EOF; ch = std::getchar()) {
        }
        server.stop();
        if (replicator) {
            replicator->stop();
        }
        if (repl_server) {
            repl_server->stop();
        }
        if (repl_log) {
            repl_log->stop();
        }
        if (model_store) {
            model_store->stop();
            const auto store_stats = model_store->stats();
            std::printf("store: %llu append(s), %llu byte(s), "
                        "%llu snapshot(s)\n",
                        static_cast<unsigned long long>(store_stats.appended),
                        static_cast<unsigned long long>(store_stats.bytes),
                        static_cast<unsigned long long>(store_stats.snapshots));
        }

        // The shutdown dump reads the same typed ServerStats surface a
        // remote client gets from ServeClient::stats().
        const auto stats = serve::ServerStats::from_fields(
            serve::make_stats_reply(engine.stats(), registry.size()).stats);
        std::printf("served %zu connection(s), %llu request(s) "
                    "(%llu computed, %llu coalesced, %llu cache hit(s))\n",
                    server.connections_accepted(),
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.computed),
                    static_cast<unsigned long long>(stats.coalesced),
                    static_cast<unsigned long long>(stats.hits));
        std::printf("role %s: repl_lag_frames %llu, repl_lag_seconds %.3g, "
                    "repl_source %s, repl_applied_generation %llu\n",
                    stats.role.c_str(),
                    static_cast<unsigned long long>(stats.repl_lag_frames),
                    stats.repl_lag_seconds, stats.repl_source.c_str(),
                    static_cast<unsigned long long>(
                        stats.repl_applied_generation));
        if (adapter) {
            std::printf("adaptation: %llu sample(s), %llu reliable "
                        "window(s), %llu republish(es), model version %llu\n",
                        static_cast<unsigned long long>(stats.adapt_samples),
                        static_cast<unsigned long long>(stats.adapt_reliable),
                        static_cast<unsigned long long>(
                            stats.adapt_republished),
                        static_cast<unsigned long long>(
                            stats.adapt_model_version));
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

// fpmpart_feedback — replay served-execution measurements against a
// running fpmpart_serve.
//
// Reads a CSV of feedback samples and reports each one over the v4
// FEEDBACK verb, so recorded production traces (or synthetic drift
// scenarios) can be replayed against a live server to drive its online
// adaptation loop (see docs/adaptation.md).  Rows are pipelined in
// batches for throughput; the summary counts reliable windows, drift
// flags and republishes seen in the typed replies.
//
// CSV format (one sample per line, '#' comments and blank lines
// ignored):
//
//   set,device,problem_size,seconds
//   hybrid,0,4096,0.125
//
// Usage:
//   fpmpart_feedback --csv FILE [--host H] [--port P]
//                    [--repeat N] [--batch N] [--trace FILE]
//
// --repeat replays the whole file N times (default 1); --batch controls
// how many FEEDBACK lines are pipelined per round trip (default 32).
// Exits 0 when every sample got an OK reply, 1 when any sample was
// rejected (ERR) or the transport failed, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/serve/client.hpp"
#include "tool_args.hpp"

namespace {

struct Row {
    fpm::serve::FeedbackSample sample;
    std::size_t line = 0;  // 1-based CSV line, for diagnostics
};

std::vector<Row> load_csv(const std::string& path) {
    std::ifstream in(path);
    FPM_CHECK(in.good(), "cannot open CSV file: " + path);
    std::vector<Row> rows;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream fields(line);
        std::string set, device, size, seconds, extra;
        const bool shaped = std::getline(fields, set, ',') &&
                            std::getline(fields, device, ',') &&
                            std::getline(fields, size, ',') &&
                            std::getline(fields, seconds) &&
                            !std::getline(fields, extra);
        FPM_CHECK(shaped && !set.empty(),
                  "line " + std::to_string(lineno) +
                      ": expected set,device,size,seconds");
        Row row;
        row.line = lineno;
        row.sample.model_set = set;
        row.sample.device = fpmtool::parse_int(
            device, "device (line " + std::to_string(lineno) + ")");
        errno = 0;
        char* end = nullptr;
        row.sample.problem_size = std::strtod(size.c_str(), &end);
        FPM_CHECK(end != size.c_str() && *end == '\0' && errno == 0,
                  "line " + std::to_string(lineno) +
                      ": malformed problem size: " + size);
        end = nullptr;
        row.sample.seconds = std::strtod(seconds.c_str(), &end);
        FPM_CHECK(end != seconds.c_str() && *end == '\0' && errno == 0,
                  "line " + std::to_string(lineno) +
                      ": malformed seconds: " + seconds);
        rows.push_back(row);
    }
    FPM_CHECK(!rows.empty(), "CSV file has no samples: " + path);
    return rows;
}

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::string host = "127.0.0.1";
        std::string csv_path;
        std::uint16_t port = 0;
        long long repeat = 1;
        long long batch = 32;

        fpmtool::FlagTable flags("fpmpart_feedback");
        flags.bind("--csv", "FILE", &csv_path).require()
            .bind("--host", "H", &host)
            .bind("--port", "P", &port, 1, 65535).require()
            .bind("--repeat", "N", &repeat, 1)
            .bind("--batch", "N", &batch, 1)
            .trace();
        if (!flags.parse(argc, argv)) {
            return 2;
        }

        const std::vector<Row> rows = load_csv(csv_path);
        serve::ServeClient client(host, port);

        std::uint64_t sent = 0;
        std::uint64_t rejected = 0;
        std::uint64_t reliable = 0;
        std::uint64_t drift = 0;
        std::uint64_t republished = 0;
        std::uint64_t version = 0;
        for (long long pass = 0; pass < repeat; ++pass) {
            for (std::size_t base = 0; base < rows.size();
                 base += static_cast<std::size_t>(batch)) {
                const std::size_t count =
                    std::min(rows.size() - base,
                             static_cast<std::size_t>(batch));
                std::vector<std::string> lines;
                lines.reserve(count);
                for (std::size_t i = 0; i < count; ++i) {
                    serve::Request request;
                    request.kind = serve::Request::Kind::kFeedback;
                    request.feedback = rows[base + i].sample;
                    lines.push_back(request.encode());
                }
                const auto replies = client.pipeline(lines);
                for (std::size_t i = 0; i < replies.size(); ++i) {
                    ++sent;
                    const auto response = serve::Response::decode(replies[i]);
                    if (response.kind == serve::Response::Kind::kError) {
                        ++rejected;
                        std::fprintf(stderr,
                                     "line %zu rejected: ERR %s\n",
                                     rows[base + i].line,
                                     response.error.c_str());
                        continue;
                    }
                    const auto& reply = response.feedback;
                    reliable += reply.reliable ? 1 : 0;
                    drift += reply.drift ? 1 : 0;
                    republished += reply.republished ? 1 : 0;
                    version = reply.version;
                }
            }
        }

        std::printf("replayed %llu sample(s) (%lld pass(es)): "
                    "%llu reliable window(s), %llu drift flag(s), "
                    "%llu republish(es), model version %llu, "
                    "%llu rejected\n",
                    static_cast<unsigned long long>(sent), repeat,
                    static_cast<unsigned long long>(reliable),
                    static_cast<unsigned long long>(drift),
                    static_cast<unsigned long long>(republished),
                    static_cast<unsigned long long>(version),
                    static_cast<unsigned long long>(rejected));
        return rejected == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

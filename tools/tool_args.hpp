/// \file tool_args.hpp
/// \brief Declarative command-line flag table shared by the fpmpart tools.
///
/// Each tool declares its surface once: a flag name, a value
/// placeholder, and a *binding* — a pointer to the field the value
/// lands in (typically a ServeConfig/AdaptConfig member, so the flag's
/// default is the config struct's default and nothing restates it).
/// The table generates the usage text from the declarations, rejects
/// unknown flags, flags missing their value, duplicates of
/// non-repeatable flags, garbage numbers and out-of-range values, and
/// on any of those prints `error: ...` plus the usage to stderr so the
/// tool can exit 2 — the same contract the previous hand-rolled parser
/// enforced, now without a tool ever writing its own usage string.
///
/// Bindings: std::string (verbatim), bool (`on|off`), any non-bool
/// integral type (whole-token parse + inclusive range check), double
/// (whole-token parse + range check), and repeatable string lists.
/// `--trace FILE` is shared by every tool via trace(): an explicit flag
/// wins, otherwise the FPMPART_TRACE environment variable decides.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/obs/trace.hpp"

namespace fpmtool {

/// Checked whole-token integer parse (std::atol would silently yield 0).
[[nodiscard]] inline long long parse_int(const std::string& text,
                                         const std::string& what) {
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              "malformed integer for " + what + ": " + text);
    return parsed;
}

/// Checked whole-token floating-point parse.
[[nodiscard]] inline double parse_number(const std::string& text,
                                         const std::string& what) {
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              "malformed number for " + what + ": " + text);
    return parsed;
}

/// See file comment.
class FlagTable {
public:
    /// `program` names the tool in the generated usage line.
    explicit FlagTable(std::string program) : program_(std::move(program)) {}

    /// String flag: the value is stored verbatim.
    FlagTable& bind(const char* flag, const char* placeholder,
                    std::string* target) {
        add(flag, placeholder, false,
            [target](const std::string& value) { *target = value; });
        return *this;
    }

    /// Boolean flag: the value must be `on` or `off`.
    FlagTable& bind(const char* flag, const char* placeholder, bool* target) {
        const std::string name = flag;
        add(flag, placeholder, false,
            [target, name](const std::string& value) {
                FPM_CHECK(value == "on" || value == "off",
                          name + " expects on|off, got '" + value + "'");
                *target = value == "on";
            });
        return *this;
    }

    /// Integral flag with an inclusive range check (defaults accept
    /// anything long long holds); the whole token must parse.
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    FlagTable& bind(const char* flag, const char* placeholder, T* target,
                    long long min = LLONG_MIN, long long max = LLONG_MAX) {
        const std::string name = flag;
        add(flag, placeholder, false,
            [target, name, min, max](const std::string& value) {
                const long long parsed = parse_int(value, name);
                FPM_CHECK(parsed >= min && parsed <= max,
                          name + " expects an integer in [" +
                              std::to_string(min) + ", " +
                              std::to_string(max) + "], got " + value);
                *target = static_cast<T>(parsed);
            });
        return *this;
    }

    /// Floating-point flag with an inclusive range check.
    FlagTable& bind(const char* flag, const char* placeholder, double* target,
                    double min = -std::numeric_limits<double>::infinity(),
                    double max = std::numeric_limits<double>::infinity()) {
        const std::string name = flag;
        add(flag, placeholder, false,
            [target, name, min, max](const std::string& value) {
                const double parsed = parse_number(value, name);
                FPM_CHECK(parsed >= min && parsed <= max,
                          name + " is out of range: " + value);
                *target = parsed;
            });
        return *this;
    }

    /// Repeatable string flag: every occurrence appends, in order.
    FlagTable& bind_list(const char* flag, const char* placeholder,
                         std::vector<std::string>* target) {
        add(flag, placeholder, true,
            [target](const std::string& value) { target->push_back(value); });
        return *this;
    }

    /// Marks the most recently bound flag as required: parse() fails
    /// when it never appeared.
    FlagTable& require() {
        FPM_CHECK(!flags_.empty(), "require() before any bind()");
        flags_.back().required = true;
        return *this;
    }

    /// Registers the shared `--trace FILE` flag; parse() applies it
    /// (explicit flag wins, else FPMPART_TRACE decides).
    FlagTable& trace() {
        trace_enabled_ = true;
        bind("--trace", "FILE", &trace_path_);
        return *this;
    }

    /// The generated usage text: required flags first (repeatable ones
    /// showing their `[--flag V ...]` tail), optional flags bracketed,
    /// wrapped to terminal width.
    [[nodiscard]] std::string usage() const {
        std::string text = "usage: " + program_;
        const std::string indent(7 + program_.size() > 24
                                     ? std::size_t{8}
                                     : 7 + program_.size() + 1,
                                 ' ');
        std::size_t column = 7 + program_.size();
        auto append = [&](const std::string& item) {
            if (column + 1 + item.size() > 78 && column > indent.size()) {
                text += "\n" + indent;
                column = indent.size();
            } else {
                text += ' ';
                ++column;
            }
            text += item;
            column += item.size();
        };
        for (const Flag& flag : flags_) {
            if (!flag.required) {
                continue;
            }
            std::string item = flag.name + " " + flag.placeholder;
            if (flag.repeatable) {
                item += " [" + flag.name + " " + flag.placeholder + " ...]";
            }
            append(item);
        }
        for (const Flag& flag : flags_) {
            if (flag.required) {
                continue;
            }
            append("[" + flag.name + " " + flag.placeholder + "]");
        }
        text += "\n";
        return text;
    }

    /// Parses argv against the table, applying every binding.  On any
    /// error (unknown flag, missing value, duplicate, malformed or
    /// out-of-range number, missing required flag) prints the error and
    /// the usage to stderr and returns false — the caller exits 2.
    [[nodiscard]] bool parse(int argc, char** argv) {
        try {
            for (int i = 1; i < argc; ++i) {
                const std::string name = argv[i];
                const auto it = index_.find(name);
                FPM_CHECK(it != index_.end(), "unknown flag: " + name);
                Flag& flag = flags_[it->second];
                FPM_CHECK(i + 1 < argc, "missing value for " + name);
                FPM_CHECK(flag.repeatable || !flag.seen,
                          "duplicate flag: " + name);
                flag.seen = true;
                flag.apply(argv[++i]);
            }
            for (const Flag& flag : flags_) {
                FPM_CHECK(!flag.required || flag.seen,
                          flag.name + " is required");
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n%s", e.what(), usage().c_str());
            return false;
        }
        if (trace_enabled_) {
            if (!trace_path_.empty()) {
                fpm::obs::enable_tracing(trace_path_);
            } else {
                fpm::obs::init_tracing_from_env();
            }
        }
        return true;
    }

    /// Whether `flag` appeared on the command line (valid after parse()).
    [[nodiscard]] bool seen(const std::string& flag) const {
        const auto it = index_.find(flag);
        return it != index_.end() && flags_[it->second].seen;
    }

private:
    struct Flag {
        std::string name;
        std::string placeholder;
        bool repeatable = false;
        bool required = false;
        bool seen = false;
        std::function<void(const std::string&)> apply;
    };

    void add(const char* flag, const char* placeholder, bool repeatable,
             std::function<void(const std::string&)> apply) {
        FPM_CHECK(index_.find(flag) == index_.end(),
                  std::string("flag declared twice: ") + flag);
        index_[flag] = flags_.size();
        flags_.push_back(
            Flag{flag, placeholder, repeatable, false, false, std::move(apply)});
    }

    std::string program_;
    std::vector<Flag> flags_;
    std::map<std::string, std::size_t> index_;
    bool trace_enabled_ = false;
    std::string trace_path_;
};

} // namespace fpmtool

/// \file tool_args.hpp
/// \brief Checked command-line parsing shared by the fpmpart tools.
///
/// The tools take only `--flag value` pairs.  Unlike the ad-hoc scan
/// this replaces, the parser rejects unknown flags, flags missing their
/// value, and non-numeric/garbage numbers (std::atol would silently
/// yield 0) — every tool exits non-zero with its usage message instead
/// of partitioning a zero-sized workload.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/obs/trace.hpp"

namespace fpmtool {

/// See file comment.  Flags listed in `repeatable` may appear multiple
/// times (values accumulate, in order); all others at most once.
class ArgParser {
public:
    ArgParser(int argc, char** argv, std::initializer_list<const char*> flags,
              std::initializer_list<const char*> repeatable = {}) {
        for (const char* flag : flags) {
            known_.emplace(flag, false);
        }
        for (const char* flag : repeatable) {
            known_.emplace(flag, true);
        }
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            const auto it = known_.find(flag);
            FPM_CHECK(it != known_.end(), "unknown flag: " + flag);
            FPM_CHECK(i + 1 < argc, "missing value for " + flag);
            FPM_CHECK(it->second || values_.find(flag) == values_.end(),
                      "duplicate flag: " + flag);
            values_[flag].emplace_back(argv[++i]);
        }
    }

    /// Last value of `flag`, or `fallback` when absent.
    [[nodiscard]] std::string value(const std::string& flag,
                                    const std::string& fallback) const {
        const auto it = values_.find(flag);
        return it == values_.end() ? fallback : it->second.back();
    }

    /// Every value of a repeatable `flag` (empty when absent).
    [[nodiscard]] std::vector<std::string> values(const std::string& flag) const {
        const auto it = values_.find(flag);
        return it == values_.end() ? std::vector<std::string>{} : it->second;
    }

    [[nodiscard]] bool has(const std::string& flag) const {
        return values_.find(flag) != values_.end();
    }

    /// Checked integer value: the whole token must parse.
    [[nodiscard]] long long int_value(const std::string& flag,
                                      long long fallback) const {
        const auto it = values_.find(flag);
        if (it == values_.end()) {
            return fallback;
        }
        return parse_int(it->second.back(), flag);
    }

    /// Checked floating-point value: the whole token must parse.
    [[nodiscard]] double double_value(const std::string& flag,
                                      double fallback) const {
        const auto it = values_.find(flag);
        if (it == values_.end()) {
            return fallback;
        }
        const std::string& text = it->second.back();
        errno = 0;
        char* end = nullptr;
        const double parsed = std::strtod(text.c_str(), &end);
        FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
                  "malformed number for " + flag + ": " + text);
        return parsed;
    }

    [[nodiscard]] static long long parse_int(const std::string& text,
                                             const std::string& what) {
        errno = 0;
        char* end = nullptr;
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
                  "malformed integer for " + what + ": " + text);
        return parsed;
    }

private:
    std::map<std::string, bool> known_;  // flag -> repeatable?
    std::map<std::string, std::vector<std::string>> values_;
};

/// Shared `--trace FILE` handling: an explicit flag wins, otherwise the
/// FPMPART_TRACE environment variable decides.  The export is flushed at
/// process exit.
inline void init_tracing(const ArgParser& args) {
    if (args.has("--trace")) {
        fpm::obs::enable_tracing(args.value("--trace", ""));
    } else {
        fpm::obs::init_tracing_from_env();
    }
}

} // namespace fpmtool

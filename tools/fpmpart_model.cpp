// fpmpart_model — build functional performance models and save them.
//
// Builds the FPMs of a device configuration and writes them as a model
// CSV that fpmpart_partition (or any user of core::load_speed_functions_csv)
// consumes.  Sources:
//
//   --source sim      the simulated ig.icl.utk.edu node (default)
//   --source host     the real GEMM on this machine (one CPU device)
//
// Defaults: --source sim --config hybrid --version 3 --noise 0
//           --xmax 5200 --points 44 --out models.csv
// (run with an unknown flag to see the generated usage text)
#include <cstdio>
#include <string>

#include "fpm/app/device_set.hpp"
#include "fpm/core/model_io.hpp"
#include "tool_args.hpp"

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::string source = "sim";
        std::string config = "hybrid";
        int version_arg = 3;
        double noise = 0.0;
        double x_max = 5200.0;
        std::size_t points = 44;
        std::string out = "models.csv";

        fpmtool::FlagTable flags("fpmpart_model");
        flags.bind("--source", "sim|host", &source)
            .bind("--config", "hybrid|cpu|gpu0|gpu1", &config)
            .bind("--version", "1|2|3", &version_arg, 1, 3)
            .bind("--noise", "SIGMA", &noise, 0.0)
            .bind("--xmax", "BLOCKS", &x_max, 1.0)
            .bind("--points", "N", &points, 1)
            .bind("--out", "FILE", &out)
            .trace();
        if (!flags.parse(argc, argv)) {
            return 2;
        }
        if (source != "sim" && source != "host") {
            std::fprintf(stderr, "unknown --source '%s'\n%s", source.c_str(),
                         flags.usage().c_str());
            return 2;
        }

        core::FpmBuildOptions options;
        options.x_min = 4.0;
        options.x_max = x_max;
        options.initial_points = std::min<std::size_t>(14, points);
        options.max_points = points;
        if (noise > 0.0) {
            options.reliability.min_repetitions = 3;
            options.reliability.max_repetitions = 30;
            options.reliability.target_relative_error = 0.02;
        } else {
            options.reliability.min_repetitions = 1;
            options.reliability.max_repetitions = 1;
        }

        std::vector<core::SpeedFunction> models;

        if (source == "host") {
            if (config != "hybrid") {
                std::fprintf(stderr,
                             "--config is ignored with --source host\n");
            }
            core::RealGemmKernelBench bench(64, 2);
            options.x_max = std::min(options.x_max, 128.0);
            options.reliability.min_repetitions = 3;
            options.reliability.max_repetitions = 10;
            options.reliability.target_relative_error = 0.1;
            options.reliability.max_total_seconds = 5.0;
            models.push_back(core::build_fpm(bench, options));
        } else {
            sim::SimOptions sim_options;
            sim_options.noise_sigma = noise;
            sim::HybridNode node(sim::ig_platform(), sim_options);
            const auto kernel_version = static_cast<sim::KernelVersion>(
                std::clamp(version_arg, 1, 3));

            app::DeviceSet set;
            if (config == "hybrid") {
                set = app::hybrid_devices(node, kernel_version);
            } else if (config == "cpu") {
                set = app::cpu_only_devices(node);
            } else if (config == "gpu0") {
                set = app::single_gpu_devices(node, 0, kernel_version);
            } else if (config == "gpu1") {
                set = app::single_gpu_devices(node, 1, kernel_version);
            } else {
                std::fprintf(stderr, "unknown --config '%s'\n%s",
                             config.c_str(), flags.usage().c_str());
                return 2;
            }
            models = app::build_device_fpms(node, set, options);
        }

        core::save_speed_functions_csv(out, models);
        std::printf("wrote %zu model(s) to %s\n", models.size(), out.c_str());
        for (const auto& model : models) {
            std::printf("  %-24s %3zu points, x in [%.0f, %.0f]\n",
                        model.name().c_str(), model.points().size(),
                        model.points().front().x, model.points().back().x);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

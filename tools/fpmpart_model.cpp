// fpmpart_model — build functional performance models and save them.
//
// Builds the FPMs of a device configuration and writes them as a model
// CSV that fpmpart_partition (or any user of core::load_speed_functions_csv)
// consumes.  Sources:
//
//   --source sim      the simulated ig.icl.utk.edu node (default)
//   --source host     the real GEMM on this machine (one CPU device)
//
// Usage:
//   fpmpart_model [--source sim|host] [--config hybrid|cpu|gpu0|gpu1]
//                 [--version 1|2|3] [--noise SIGMA] [--xmax BLOCKS]
//                 [--points N] [--out FILE]
//
// Defaults: --source sim --config hybrid --version 3 --noise 0
//           --xmax 5200 --points 44 --out models.csv
#include <cstdio>
#include <cstring>
#include <string>

#include "fpm/app/device_set.hpp"
#include "fpm/core/model_io.hpp"

namespace {

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return argv[i + 1];
        }
    }
    return fallback;
}

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        const std::string source = arg_value(argc, argv, "--source", "sim");
        const std::string config = arg_value(argc, argv, "--config", "hybrid");
        const int version_arg = std::atoi(arg_value(argc, argv, "--version", "3"));
        const double noise = std::atof(arg_value(argc, argv, "--noise", "0"));
        const double x_max = std::atof(arg_value(argc, argv, "--xmax", "5200"));
        const auto points = static_cast<std::size_t>(
            std::atoi(arg_value(argc, argv, "--points", "44")));
        const std::string out = arg_value(argc, argv, "--out", "models.csv");

        core::FpmBuildOptions options;
        options.x_min = 4.0;
        options.x_max = x_max;
        options.initial_points = std::min<std::size_t>(14, points);
        options.max_points = points;
        if (noise > 0.0) {
            options.reliability.min_repetitions = 3;
            options.reliability.max_repetitions = 30;
            options.reliability.target_relative_error = 0.02;
        } else {
            options.reliability.min_repetitions = 1;
            options.reliability.max_repetitions = 1;
        }

        std::vector<core::SpeedFunction> models;

        if (source == "host") {
            core::RealGemmKernelBench bench(64, 2);
            options.x_max = std::min(options.x_max, 128.0);
            options.reliability.min_repetitions = 3;
            options.reliability.max_repetitions = 10;
            options.reliability.target_relative_error = 0.1;
            options.reliability.max_total_seconds = 5.0;
            models.push_back(core::build_fpm(bench, options));
        } else if (source == "sim") {
            sim::SimOptions sim_options;
            sim_options.noise_sigma = noise;
            sim::HybridNode node(sim::ig_platform(), sim_options);
            const auto kernel_version = static_cast<sim::KernelVersion>(
                std::clamp(version_arg, 1, 3));

            app::DeviceSet set;
            if (config == "hybrid") {
                set = app::hybrid_devices(node, kernel_version);
            } else if (config == "cpu") {
                set = app::cpu_only_devices(node);
            } else if (config == "gpu0") {
                set = app::single_gpu_devices(node, 0, kernel_version);
            } else if (config == "gpu1") {
                set = app::single_gpu_devices(node, 1, kernel_version);
            } else {
                std::fprintf(stderr, "unknown --config '%s'\n", config.c_str());
                return 2;
            }
            models = app::build_device_fpms(node, set, options);
        } else {
            std::fprintf(stderr, "unknown --source '%s'\n", source.c_str());
            return 2;
        }

        core::save_speed_functions_csv(out, models);
        std::printf("wrote %zu model(s) to %s\n", models.size(), out.c_str());
        for (const auto& model : models) {
            std::printf("  %-24s %3zu points, x in [%.0f, %.0f]\n",
                        model.name().c_str(), model.points().size(),
                        model.points().front().x, model.points().back().x);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

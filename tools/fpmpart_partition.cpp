// fpmpart_partition — partition a workload using saved models.
//
// Loads a model CSV (see fpmpart_model / core::model_io), runs the chosen
// partitioning algorithm for an n x n block matrix, and prints the
// per-device shares, the balanced-time prediction and the 2-D column
// layout.  Optionally writes the layout as CSV.
//
// Usage:
//   fpmpart_partition --models FILE --n SIZE
//                     [--algorithm fpm|cpm|even] [--layout-out FILE]
//
// The CPM variant reduces every model to its speed at the even share
// (the traditional approach the paper compares against).
#include <cstdio>
#include <string>

#include "fpm/core/model_io.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"
#include "tool_args.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fpmpart_partition --models FILE --n SIZE "
    "[--algorithm fpm|cpm|even] [--layout-out FILE]\n";

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::string models_path;
        std::int64_t n = 0;
        std::string algorithm;
        std::string layout_out;
        try {
            const fpmtool::ArgParser args(
                argc, argv, {"--models", "--n", "--algorithm", "--layout-out"});
            models_path = args.value("--models", "");
            n = args.int_value("--n", 0);
            algorithm = args.value("--algorithm", "fpm");
            layout_out = args.value("--layout-out", "");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
            return 2;
        }

        if (models_path.empty() || n <= 0) {
            std::fprintf(stderr, "%s", kUsage);
            return 2;
        }
        // Reject a bad algorithm before paying for the model load.
        if (algorithm != "fpm" && algorithm != "cpm" && algorithm != "even") {
            std::fprintf(stderr, "unknown --algorithm '%s'\n%s",
                         algorithm.c_str(), kUsage);
            return 2;
        }

        const auto models = core::load_speed_functions_csv(models_path);
        const double total = static_cast<double>(n) * static_cast<double>(n);

        part::Partition1D continuous;
        double balanced_time = 0.0;
        if (algorithm == "fpm") {
            auto result = part::partition_fpm(models, total);
            continuous = std::move(result.partition);
            balanced_time = result.balanced_time;
        } else if (algorithm == "cpm") {
            std::vector<double> speeds;
            speeds.reserve(models.size());
            const double share =
                total / static_cast<double>(models.size());
            for (const auto& model : models) {
                speeds.push_back(
                    model.speed(std::min(share, model.max_problem())));
            }
            continuous = part::partition_cpm(speeds, total);
        } else {
            continuous = part::partition_homogeneous(models.size(), total);
        }

        const auto blocks = part::round_partition(continuous, n * n, models);
        const auto layout = part::column_partition(n, blocks.blocks);

        std::printf("%s partitioning of a %lld x %lld block matrix over %zu "
                    "device(s)\n\n",
                    algorithm.c_str(), static_cast<long long>(n),
                    static_cast<long long>(n), models.size());

        trace::Table table({"device", "blocks", "share %", "rect",
                            "predicted time (s)"});
        for (std::size_t i = 0; i < models.size(); ++i) {
            const auto& rect = layout.rects[i];
            table.row()
                .cell(models[i].name())
                .cell(blocks.blocks[i])
                .cell(100.0 * static_cast<double>(blocks.blocks[i]) / total, 1)
                .cell(std::to_string(rect.w) + " x " + std::to_string(rect.h))
                .cell(models[i].time(static_cast<double>(blocks.blocks[i])), 3);
        }
        table.print();
        std::printf("\npredicted makespan: %.3f s",
                    part::makespan(models, std::span<const std::int64_t>(
                                               blocks.blocks)));
        if (balanced_time > 0.0) {
            std::printf(" (balanced time %.3f s)", balanced_time);
        }
        std::printf("\ncommunication cost (half-perimeter sum): %lld blocks\n",
                    static_cast<long long>(layout.comm_cost()));

        if (!layout_out.empty()) {
            trace::CsvWriter csv(layout_out);
            csv.write_row(std::vector<std::string>{"device", "col0", "row0",
                                                   "w", "h"});
            for (std::size_t i = 0; i < layout.rects.size(); ++i) {
                const auto& rect = layout.rects[i];
                csv.write_row(std::vector<std::string>{
                    models[i].name(), std::to_string(rect.col0),
                    std::to_string(rect.row0), std::to_string(rect.w),
                    std::to_string(rect.h)});
            }
            std::printf("layout written to %s\n", layout_out.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

// fpmpart_partition — partition a workload using saved models.
//
// Loads a model CSV (see fpmpart_model / core::model_io), runs the chosen
// partitioning algorithm for an n x n block matrix through the
// fpm::part::partition facade, and prints the per-device shares, the
// balanced-time prediction and the 2-D column layout.  Optionally writes
// the layout as CSV.
//
// Usage:
//   fpmpart_partition --models FILE --n SIZE
//                     [--algorithm fpm|cpm|even] [--layout-out FILE]
//                     [--trace FILE]
//
// The CPM variant reduces every model to its speed at the even share
// (the traditional approach the paper compares against).
#include <cstdio>
#include <string>

#include "fpm/core/model_io.hpp"
#include "fpm/part/request.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"
#include "tool_args.hpp"

int main(int argc, char** argv) {
    using namespace fpm;
    try {
        std::string models_path;
        std::int64_t n = 0;
        std::string algorithm_text = "fpm";
        std::string layout_out;

        fpmtool::FlagTable flags("fpmpart_partition");
        flags.bind("--models", "FILE", &models_path).require()
            .bind("--n", "SIZE", &n, 1).require()
            .bind("--algorithm", "fpm|cpm|even", &algorithm_text)
            .bind("--layout-out", "FILE", &layout_out)
            .trace();
        if (!flags.parse(argc, argv)) {
            return 2;
        }
        // Reject a bad algorithm before paying for the model load.
        const auto algorithm = part::parse_algorithm(algorithm_text);
        if (!algorithm.has_value()) {
            std::fprintf(stderr, "unknown --algorithm '%s'\n%s",
                         algorithm_text.c_str(), flags.usage().c_str());
            return 2;
        }

        const auto models = core::load_speed_functions_csv(models_path);

        part::PartitionRequest request;
        request.models = models;
        request.n = n;
        request.algorithm = *algorithm;
        request.with_layout = true;
        const part::PartitionPlan plan = part::partition(request);
        const double total = static_cast<double>(n) * static_cast<double>(n);

        std::printf("%s partitioning of a %lld x %lld block matrix over %zu "
                    "device(s)\n\n",
                    part::to_string(plan.algorithm), static_cast<long long>(n),
                    static_cast<long long>(n), models.size());

        trace::Table table({"device", "blocks", "share %", "rect",
                            "predicted time (s)"});
        for (std::size_t i = 0; i < models.size(); ++i) {
            const auto& rect = plan.layout.rects[i];
            table.row()
                .cell(models[i].name())
                .cell(plan.blocks[i])
                .cell(100.0 * static_cast<double>(plan.blocks[i]) / total, 1)
                .cell(std::to_string(rect.w) + " x " + std::to_string(rect.h))
                .cell(models[i].time(static_cast<double>(plan.blocks[i])), 3);
        }
        table.print();
        std::printf("\npredicted makespan: %.3f s", plan.makespan);
        if (plan.balanced_time > 0.0) {
            std::printf(" (balanced time %.3f s)", plan.balanced_time);
        }
        std::printf("\ncommunication cost (half-perimeter sum): %lld blocks\n",
                    static_cast<long long>(plan.comm_cost));

        if (!layout_out.empty()) {
            trace::CsvWriter csv(layout_out);
            csv.write_row(std::vector<std::string>{"device", "col0", "row0",
                                                   "w", "h"});
            for (std::size_t i = 0; i < plan.layout.rects.size(); ++i) {
                const auto& rect = plan.layout.rects[i];
                csv.write_row(std::vector<std::string>{
                    models[i].name(), std::to_string(rect.col0),
                    std::to_string(rect.row0), std::to_string(rect.w),
                    std::to_string(rect.h)});
            }
            std::printf("layout written to %s\n", layout_out.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
